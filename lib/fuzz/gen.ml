(** Feature-flagged structured kernel generator.  See the interface for
    the race-freedom discipline that makes the oracle sound. *)

open Darm_ir
module Memory = Darm_sim.Memory
module Kernel = Darm_kernels.Kernel
module D = Dsl

type features = {
  loops_uniform : bool;
  loops_divergent : bool;
  barriers : bool;
  shared_tile : bool;
  nested_diamonds : bool;
  switch_ladders : bool;
}

let all_features =
  {
    loops_uniform = true;
    loops_divergent = true;
    barriers = true;
    shared_tile = true;
    nested_diamonds = true;
    switch_ladders = true;
  }

let no_features =
  {
    loops_uniform = false;
    loops_divergent = false;
    barriers = false;
    shared_tile = false;
    nested_diamonds = false;
    switch_ladders = false;
  }

let feature_names =
  [
    ("loops-uniform", (fun f -> f.loops_uniform),
     fun f -> { f with loops_uniform = true });
    ("loops-divergent", (fun f -> f.loops_divergent),
     fun f -> { f with loops_divergent = true });
    ("barriers", (fun f -> f.barriers), fun f -> { f with barriers = true });
    ("shared-tile", (fun f -> f.shared_tile),
     fun f -> { f with shared_tile = true });
    ("nested-diamonds", (fun f -> f.nested_diamonds),
     fun f -> { f with nested_diamonds = true });
    ("switch-ladders", (fun f -> f.switch_ladders),
     fun f -> { f with switch_ladders = true });
  ]

let features_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "all" -> Ok all_features
  | "none" -> Ok no_features
  | spec ->
      let parts =
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun p -> p <> "")
      in
      List.fold_left
        (fun acc part ->
          match acc with
          | Error _ as e -> e
          | Ok f -> (
              match
                List.find_opt (fun (n, _, _) -> n = part) feature_names
              with
              | Some (_, _, set) -> Ok (set f)
              | None ->
                  Error
                    (Printf.sprintf
                       "unknown feature %s (expected all, none, or a comma \
                        list of %s)"
                       part
                       (String.concat ", "
                          (List.map (fun (n, _, _) -> n) feature_names)))))
        (Ok no_features) parts

let features_to_string f =
  match
    List.filter_map
      (fun (n, get, _) -> if get f then Some n else None)
      feature_names
  with
  | [] -> "none"
  | names when List.length names = List.length feature_names -> "all"
  | names -> String.concat "," names

type cfg = {
  max_depth : int;
  stmts_per_block : int;
  array_size : int;
  features : features;
}

let default_cfg =
  { max_depth = 3; stmts_per_block = 3; array_size = 128;
    features = all_features }

let smoke_cfg = { default_cfg with max_depth = 2; stmts_per_block = 2 }

type gen_state = {
  rng : Random.State.t;
  ctx : D.ctx;
  cfg : cfg;
  vars : D.var array;          (** mutable integer locals *)
  ro_arrays : Ssa.value array; (** read-only outside barrier phases *)
  shared : Ssa.value option;   (** the shared tile, when enabled *)
  own_cell : Ssa.value;        (** this thread's private output cell *)
  mask : Ssa.value;            (** array_size - 1 *)
  gid : Ssa.value;
  tid : Ssa.value;
}

let pick g (choices : 'a array) : 'a =
  choices.(Random.State.int g.rng (Array.length choices))

let rand g n = Random.State.int g.rng n

(* a random pure i32 expression over the current variable pool; only
   reads race-free locations (read-only arrays and the own cell) *)
let rec gen_expr g (depth : int) : Ssa.value =
  let leaf () =
    match rand g 5 with
    | 0 -> D.i32 (rand g 64)
    | 1 -> g.gid
    | 2 -> g.tid
    | 3 -> D.get g.ctx (pick g g.vars)
    | _ -> (
        match rand g 3 with
        | 0 -> D.load g.ctx g.own_cell
        | _ ->
            let arr = pick g g.ro_arrays in
            let idx = D.and_ g.ctx (D.get g.ctx (pick g g.vars)) g.mask in
            D.load g.ctx (D.gep g.ctx arr idx))
  in
  if depth = 0 then leaf ()
  else
    match rand g 9 with
    | 0 -> D.add g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 1 -> D.sub g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 2 -> D.mul g.ctx (gen_expr g (depth - 1)) (D.i32 (1 + rand g 7))
    | 3 -> D.xor g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 4 -> D.and_ g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 5 -> D.smin g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 6 -> D.smax g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 7 ->
        D.select g.ctx (gen_cond g)
          (gen_expr g (depth - 1))
          (gen_expr g (depth - 1))
    | _ -> leaf ()

and gen_cond g : Ssa.value =
  let a = gen_expr g 1 and b = gen_expr g 1 in
  match rand g 4 with
  | 0 -> D.slt g.ctx a b
  | 1 -> D.sle g.ctx a b
  | 2 -> D.eq g.ctx (D.and_ g.ctx a (D.i32 3)) (D.i32 (rand g 4))
  | _ -> D.sgt g.ctx a b

let gen_store g = D.store g.ctx (gen_expr g 2) g.own_cell

(* A barrier-fenced shared write phase: the stored value is computed
   before the first barrier (so its tile reads stay in a write-free
   interval), then every thread stores only its own tile cell between
   two block-uniform barriers.  Optionally guarded by a block-uniform
   condition over the block index — the "correctly-guarded syncthreads"
   shape (all threads of a block agree, so the barrier stays uniform
   even though it sits under a branch). *)
let barrier_phase g =
  let phase () =
    match g.shared with
    | Some s ->
        let v = gen_expr g 2 in
        let idx = D.and_ g.ctx g.tid g.mask in
        D.sync g.ctx;
        D.store g.ctx v (D.gep g.ctx s idx);
        D.sync g.ctx
    | None -> D.sync g.ctx
  in
  if rand g 3 = 0 then
    let guard =
      D.eq g.ctx
        (D.and_ g.ctx (D.bid g.ctx) (D.i32 1))
        (D.i32 (rand g 2))
    in
    D.if_then g.ctx guard phase
  else phase ()

(* [uniform] tracks whether the current insertion point is reached by
   all threads of the block in lockstep — barriers may only be emitted
   there. *)
let rec gen_stmt g ~(uniform : bool) (depth : int) =
  let f = g.cfg.features in
  let simple =
    [|
      (fun () -> D.set g.ctx (pick g g.vars) (gen_expr g 2));
      (fun () -> gen_store g);
    |]
  in
  let structured =
    if depth <= 0 then [||]
    else
      Array.of_list
        (List.concat
           [
             [
               (fun () ->
                 (* divergent diamond: similar shapes on both sides feed
                    the melder *)
                 D.if_ g.ctx (gen_cond g)
                   (fun () -> gen_block g ~uniform:false (depth - 1))
                   (fun () -> gen_block g ~uniform:false (depth - 1)));
               (fun () ->
                 D.if_then g.ctx (gen_cond g) (fun () ->
                     gen_block g ~uniform:false (depth - 1)));
             ];
             (if f.nested_diamonds && depth > 1 then
                [
                  (fun () ->
                    (* forced nesting: a diamond directly inside each arm *)
                    let inner () =
                      D.if_ g.ctx (gen_cond g)
                        (fun () -> gen_block g ~uniform:false (depth - 2))
                        (fun () -> gen_block g ~uniform:false (depth - 2))
                    in
                    D.if_ g.ctx (gen_cond g)
                      (fun () -> gen_store g; inner ())
                      (fun () -> inner (); gen_store g));
                  (fun () ->
                    (* sequential diamonds at the same nesting level *)
                    for _ = 1 to 2 do
                      D.if_ g.ctx (gen_cond g)
                        (fun () -> gen_block g ~uniform:false (depth - 1))
                        (fun () -> gen_block g ~uniform:false (depth - 1))
                    done);
                ]
              else []);
             (if f.switch_ladders then
                [
                  (fun () ->
                    (* 4-way ladder on a small selector, the switch
                       lowering shape *)
                    let sel = D.and_ g.ctx (gen_expr g 1) (D.i32 3) in
                    let arm () = gen_block g ~uniform:false (depth - 1) in
                    D.if_ g.ctx (D.eq g.ctx sel (D.i32 0)) arm (fun () ->
                        D.if_ g.ctx (D.eq g.ctx sel (D.i32 1)) arm (fun () ->
                            D.if_ g.ctx (D.eq g.ctx sel (D.i32 2)) arm arm)));
                ]
              else []);
             (if f.loops_uniform then
                [
                  (fun () ->
                    (* constant trip count: every thread iterates alike,
                       so the body stays in the caller's uniform state *)
                    let trip = 1 + rand g 3 in
                    D.for_up g.ctx ~from:(D.i32 0) ~until:(D.i32 trip)
                      (fun iv ->
                        D.set g.ctx (pick g g.vars)
                          (D.add g.ctx (D.get g.ctx (pick g g.vars)) iv);
                        gen_block g ~uniform (depth - 1)));
                ]
              else []);
             (if f.loops_divergent then
                [
                  (fun () ->
                    (* thread-dependent trip count: temporal divergence;
                       the body is never uniform *)
                    let trip =
                      D.add g.ctx
                        (D.and_ g.ctx
                           (D.xor g.ctx g.tid (D.i32 (rand g 8)))
                           (D.i32 3))
                        (D.i32 1)
                    in
                    D.for_up g.ctx ~from:(D.i32 0) ~until:trip (fun iv ->
                        D.set g.ctx (pick g g.vars)
                          (D.xor g.ctx (D.get g.ctx (pick g g.vars)) iv);
                        gen_block g ~uniform:false (depth - 1)));
                ]
              else []);
             (if f.barriers && uniform then [ (fun () -> barrier_phase g) ]
              else []);
           ])
  in
  let choices = Array.append simple structured in
  (pick g choices) ()

and gen_block g ~uniform (depth : int) =
  let n = 1 + rand g (max 1 g.cfg.stmts_per_block) in
  for _ = 1 to n do
    gen_stmt g ~uniform depth
  done

(** Generate a kernel; deterministic in [(seed, cfg)]. *)
let generate ?(cfg = default_cfg) ~(seed : int) () : Ssa.func =
  D.build_kernel
    ~name:(Printf.sprintf "fuzz_%d" seed)
    ~params:[ ("a", Types.Ptr Types.Global); ("b", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let a, b = match params with [ a; b ] -> (a, b) | _ -> assert false in
      let rng = Random.State.make [| seed; 0x6A09E667 |] in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let mask_c = D.i32 (cfg.array_size - 1) in
      let own_cell = D.gep ctx b (D.and_ ctx gid mask_c) in
      let ro_arrays, shared =
        if cfg.features.shared_tile then begin
          let s = D.shared_array ctx cfg.array_size in
          (* threads cooperatively seed the whole tile with affine
             tid + round * blockDim addresses, then a uniform barrier
             makes it read-only for the divergent code *)
          let bd = D.bdim ctx in
          let rounds = D.sdiv ctx (D.i32 cfg.array_size) bd in
          let rounds = D.smax ctx rounds (D.i32 1) in
          D.for_up ctx ~name:"seedr" ~from:(D.i32 0) ~until:rounds (fun e ->
              let idx =
                D.and_ ctx (D.add ctx tid (D.mul ctx e bd)) mask_c
              in
              D.store ctx
                (D.add ctx (D.mul ctx idx (D.i32 3))
                   (D.load ctx (D.gep ctx a idx)))
                (D.gep ctx s idx));
          D.sync ctx;
          ([| a; s |], Some s)
        end
        else ([| a |], None)
      in
      let g =
        {
          rng;
          ctx;
          cfg;
          vars =
            Array.init 4 (fun k ->
                let v = D.local ctx ~name:(Printf.sprintf "v%d" k) Types.I32 in
                D.set ctx v
                  (match k with
                  | 0 -> gid
                  | 1 -> tid
                  | 2 -> D.i32 (Random.State.int rng 100)
                  | _ ->
                      D.load ctx
                        (D.gep ctx a (D.and_ ctx gid mask_c)));
                v);
          ro_arrays;
          shared;
          own_cell;
          mask = mask_c;
          gid;
          tid;
        }
      in
      gen_block g ~uniform:true cfg.max_depth;
      (* a barrier-feature kernel always carries at least one fenced
         phase beyond the tile-seeding fence *)
      if cfg.features.barriers then barrier_phase g;
      gen_block g ~uniform:true (min 1 cfg.max_depth);
      (* make the variable state observable *)
      let out = D.add ctx (D.get ctx g.vars.(0)) (D.get ctx g.vars.(1)) in
      let out = D.xor ctx out (D.get ctx g.vars.(2)) in
      let out = D.add ctx out (D.get ctx g.vars.(3)) in
      D.store ctx out g.own_cell)

(** Build a runnable instance around a generated kernel. *)
let instance ?(cfg = default_cfg) ~(seed : int) ~(block_size : int) () :
    Kernel.instance =
  let n = cfg.array_size in
  let a_init = Kernel.random_int_array ~seed:(seed + 1) ~n ~bound:1000 in
  let b_init = Kernel.random_int_array ~seed:(seed + 2) ~n ~bound:1000 in
  let global = Memory.create ~space:Memory.Sp_global (2 * n) in
  let pa = Memory.alloc_of_int_array global a_init in
  let pb = Memory.alloc_of_int_array global b_init in
  {
    Kernel.func = generate ~cfg ~seed ();
    global;
    args = [| pa; pb |];
    launch =
      {
        Darm_sim.Simulator.grid_dim = max 1 (n / block_size);
        block_dim = block_size;
      };
    read_result =
      (fun () ->
        Array.append
          (Memory.read_int_array global pa n)
          (Memory.read_int_array global pb n)
        |> Kernel.ints);
    reference = (fun () -> [||]);
  }
