(* Fleet-scale batch driver.  See batch.mli and doc/fleet.md. *)

open Darm_ir
module J = Darm_obs.Json
module MR = Darm_obs.Metrics_registry
module Fsio = Darm_obs.Fsio
module Cache = Darm_harness.Result_cache
module History = Darm_harness.History
module PS = Darm_harness.Parallel_sweep
module E = Darm_harness.Experiment
module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry
module Memory = Darm_sim.Memory
module Simulator = Darm_sim.Simulator
module Metrics = Darm_sim.Metrics
module Checker = Darm_checks.Checker
module Diag = Darm_checks.Diag
module Pass = Darm_core.Pass

let manifest_schema = "darm-manifest-v1"

let payload_schema = Cache.default_schema

(* ------------------------------------------------------------------ *)
(* Manifest specs                                                      *)

type spec =
  | Registry of {
      rs_tag : string;
      rs_block_size : int option;
      rs_n : int option;
      rs_seed : int;
    }
  | Fuzz of {
      fz_seed : int;
      fz_block_size : int;
      fz_smoke : bool;
      fz_features : string;
      fz_inject : string option;
    }

let spec_name = function
  | Registry r -> r.rs_tag
  | Fuzz f -> Printf.sprintf "fuzz_%d" f.fz_seed

let spec_kind = function Registry _ -> "registry" | Fuzz _ -> "fuzz"

let fuzz_cfg ~smoke ~features : (Gen.cfg, string) result =
  match Gen.features_of_string features with
  | Error e -> Error e
  | Ok fs ->
      Ok
        {
          (if smoke then Gen.smoke_cfg else Gen.default_cfg) with
          Gen.features = fs;
        }

let spec_to_json = function
  | Registry r ->
      J.Obj
        ([ ("kind", J.Str "registry"); ("kernel", J.Str r.rs_tag) ]
        @ (match r.rs_block_size with
          | None -> []
          | Some b -> [ ("block_size", J.Int b) ])
        @ (match r.rs_n with None -> [] | Some n -> [ ("n", J.Int n) ])
        @ [ ("seed", J.Int r.rs_seed) ])
  | Fuzz f ->
      J.Obj
        ([
           ("kind", J.Str "fuzz");
           ("seed", J.Int f.fz_seed);
           ("block_size", J.Int f.fz_block_size);
           ("profile", J.Str (if f.fz_smoke then "smoke" else "default"));
           ("features", J.Str f.fz_features);
         ]
        @
        match f.fz_inject with
        | None -> []
        | Some tag -> [ ("inject", J.Str tag) ])

(* tolerant accessors in the style of History: ints may arrive as
   floats from other JSON emitters *)
let get_int j k =
  match J.member k j with
  | Some (J.Int i) -> Ok i
  | Some (J.Float f) when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "missing int field %S" k)

let get_int_opt j k ~default =
  match J.member k j with None -> Ok default | Some _ -> get_int j k

let get_str_opt j k ~default =
  match J.member k j with
  | None -> Ok default
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" k)

let ( let* ) = Result.bind

let spec_of_json (j : J.t) : (spec, string) result =
  match J.member "kind" j with
  | Some (J.Str "registry") ->
      let* tag =
        match J.member "kernel" j with
        | Some (J.Str s) -> Ok s
        | _ -> Error "missing string field \"kernel\""
      in
      let* block_size =
        match J.member "block_size" j with
        | None -> Ok None
        | Some _ -> Result.map Option.some (get_int j "block_size")
      in
      let* n =
        match J.member "n" j with
        | None -> Ok None
        | Some _ -> Result.map Option.some (get_int j "n")
      in
      let* seed = get_int_opt j "seed" ~default:2022 in
      Ok
        (Registry
           { rs_tag = tag; rs_block_size = block_size; rs_n = n;
             rs_seed = seed })
  | Some (J.Str "fuzz") ->
      let* seed = get_int j "seed" in
      let* block_size = get_int_opt j "block_size" ~default:64 in
      let* profile = get_str_opt j "profile" ~default:"smoke" in
      let* smoke =
        match profile with
        | "smoke" -> Ok true
        | "default" -> Ok false
        | p -> Error (Printf.sprintf "unknown profile %S (smoke|default)" p)
      in
      let* features = get_str_opt j "features" ~default:"all" in
      let* cfg = fuzz_cfg ~smoke ~features in
      let* inject =
        match J.member "inject" j with
        | None -> Ok None
        | Some (J.Str tag) -> (
            match Mutate.of_tag tag with
            | Some _ -> Ok (Some tag)
            | None ->
                Error
                  (Printf.sprintf "unknown inject tag %S (%s)" tag
                     (String.concat "|" (List.map Mutate.tag Mutate.all))))
        | Some _ -> Error "field \"inject\" is not a string"
      in
      if cfg.Gen.array_size < block_size then
        Error
          (Printf.sprintf
             "block_size %d exceeds the profile's array_size %d (the \
              generated kernel would race against itself)"
             block_size cfg.Gen.array_size)
      else
        Ok
          (Fuzz
             { fz_seed = seed; fz_block_size = block_size; fz_smoke = smoke;
               fz_features = features; fz_inject = inject })
  | Some (J.Str other) ->
      Error (Printf.sprintf "unknown kind %S (registry|fuzz)" other)
  | _ -> Error "missing string field \"kind\""

let read_manifest (path : string) : (spec list, string) result =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else
    let text = Fsio.read_file path in
    let lines = String.split_on_char '\n' text in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest when String.trim line = "" -> go (i + 1) acc rest
      | line :: rest -> (
          match J.parse line with
          | Error e ->
              Error (Printf.sprintf "%s:%d: invalid JSON: %s" path i e)
          | Ok j -> (
              match spec_of_json j with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path i e)
              | Ok s -> go (i + 1) (s :: acc) rest))
    in
    go 1 [] lines

let write_fuzz_manifest ~path ~count ?(seed_start = 0) ?(block_size = 64)
    ?(smoke = true) ?(features = "all") ?inject () : unit =
  (match fuzz_cfg ~smoke ~features with
  | Error e -> invalid_arg ("Batch.write_fuzz_manifest: " ^ e)
  | Ok cfg ->
      if cfg.Gen.array_size < block_size then
        invalid_arg
          (Printf.sprintf
             "Batch.write_fuzz_manifest: block_size %d > array_size %d"
             block_size cfg.Gen.array_size));
  (match inject with
  | Some tag when Mutate.of_tag tag = None ->
      invalid_arg
        (Printf.sprintf "Batch.write_fuzz_manifest: unknown inject tag %S"
           tag)
  | _ -> ());
  let b = Buffer.create (count * 64) in
  for i = 0 to count - 1 do
    J.to_buffer b
      (spec_to_json
         (Fuzz
            {
              fz_seed = seed_start + i;
              fz_block_size = block_size;
              fz_smoke = smoke;
              fz_features = features;
              fz_inject = inject;
            }));
    Buffer.add_char b '\n'
  done;
  Fsio.write_atomic ~path (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Result payloads                                                     *)

(* the cache key must cover everything a payload depends on: any change
   to the pass configuration (or this signature's format) starts a
   fresh key space *)
let pass_sig : string =
  let c = Pass.default_config in
  let l = c.Pass.latency in
  Printf.sprintf
    "darm|pairing=%s|threshold=%g|unpredicate=%b|diamonds_only=%b|max_iterations=%d|run_cleanups=%b|if_convert_after=%b|validate=none|lat=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d"
    (match c.Pass.pairing with
    | Pass.Greedy -> "greedy"
    | Pass.Alignment -> "alignment")
    c.Pass.threshold c.Pass.unpredicate c.Pass.diamonds_only
    c.Pass.max_iterations c.Pass.run_cleanups c.Pass.if_convert_after
    l.Darm_analysis.Latency.alu l.Darm_analysis.Latency.mul
    l.Darm_analysis.Latency.div l.Darm_analysis.Latency.falu
    l.Darm_analysis.Latency.fdiv l.Darm_analysis.Latency.cast
    l.Darm_analysis.Latency.select l.Darm_analysis.Latency.branch
    l.Darm_analysis.Latency.shared_mem l.Darm_analysis.Latency.global_mem
    l.Darm_analysis.Latency.flat_mem l.Darm_analysis.Latency.barrier
    l.Darm_analysis.Latency.intrinsic

let payload ~name ~kind ~block_size ~n ~status ?(check_ids = [])
    ?(rewrites = 0) ?(base = (0, 0)) ?(opt = (0, 0)) ?(correct = true)
    ?(pass_ms = 0.) ?detail () : string =
  let base_cycles, base_div = base and opt_cycles, opt_div = opt in
  J.to_string
    (J.Obj
       ([
          ("schema", J.Str payload_schema);
          ("name", J.Str name);
          ("kind", J.Str kind);
          ("block_size", J.Int block_size);
          ("n", J.Int n);
          ("status", J.Str status);
          ("check_errors", J.Int (List.length check_ids));
          ("check_ids", J.List (List.map (fun s -> J.Str s) check_ids));
          ("rewrites", J.Int rewrites);
          ("base_cycles", J.Int base_cycles);
          ("opt_cycles", J.Int opt_cycles);
          ("divergent_branches_base", J.Int base_div);
          ("divergent_branches_opt", J.Int opt_div);
          ("correct", J.Bool correct);
          ("pass_ms", J.Float pass_ms);
        ]
       @ match detail with None -> [] | Some d -> [ ("detail", J.Str d) ]))
  ^ "\n"

(* run a fuzz kernel over the two-array workload (same discipline as
   Oracle.exec: deterministic inputs from the seed, warp size 64) *)
let exec_fuzz ~(n : int) ~(block_size : int) ~(input_seed : int)
    (f : Ssa.func) : Metrics.t * Memory.rv array =
  let a_init = Kernel.random_int_array ~seed:(input_seed + 1) ~n ~bound:1000 in
  let b_init = Kernel.random_int_array ~seed:(input_seed + 2) ~n ~bound:1000 in
  let global = Memory.create ~space:Memory.Sp_global (2 * n) in
  let pa = Memory.alloc_of_int_array global a_init in
  let pb = Memory.alloc_of_int_array global b_init in
  let config =
    { Simulator.default_config with max_cycles_per_warp = 10_000_000 }
  in
  let launch =
    { Simulator.grid_dim = max 1 (n / block_size); block_dim = block_size }
  in
  let m = Simulator.run ~config f ~args:[| pa; pb |] ~global launch in
  let out =
    Array.append
      (Memory.read_int_array global pa n)
      (Memory.read_int_array global pb n)
    |> Kernel.ints
  in
  (m, out)

let check_ids_of report =
  List.map (fun (d : Diag.t) -> d.Diag.id) (Checker.errors report)
  |> List.sort_uniq compare

(* compute functions return (payload line, this run's simulation wall
   in ms) — the sim time never enters the payload (it would break the
   warm-replay byte-identity), only the live latency histograms *)
let compute_fuzz ~(cfg : Gen.cfg) ~(seed : int) ~(block_size : int)
    ~(name : string) (f0 : Ssa.func) : string * float =
  let n = cfg.Gen.array_size in
  let mk = payload ~name ~kind:"fuzz" ~block_size ~n in
  let report = Checker.check_func f0 in
  match check_ids_of report with
  | _ :: _ as ids ->
      (* checker-flagged kernels are never executed (the oracle's rule) *)
      (mk ~status:"check-failed" ~check_ids:ids ~correct:false (), 0.)
  | [] ->
      let ts0 = Unix.gettimeofday () in
      let base_m, base_out = exec_fuzz ~n ~block_size ~input_seed:seed f0 in
      let sim0 = (Unix.gettimeofday () -. ts0) *. 1000. in
      let f1 = Gen.generate ~cfg ~seed () in
      let t0 = Unix.gettimeofday () in
      let stats = Pass.run f1 in
      let pass_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let ts1 = Unix.gettimeofday () in
      let opt_m, opt_out = exec_fuzz ~n ~block_size ~input_seed:seed f1 in
      let sim_ms = sim0 +. ((Unix.gettimeofday () -. ts1) *. 1000.) in
      let correct =
        Kernel.rv_array_equal base_out opt_out
        && base_m.Metrics.cycles > 0
        && opt_m.Metrics.cycles > 0
      in
      ( mk ~status:"ok" ~rewrites:stats.Pass.melds_applied
          ~base:(base_m.Metrics.cycles, base_m.Metrics.divergent_branches)
          ~opt:(opt_m.Metrics.cycles, opt_m.Metrics.divergent_branches)
          ~correct ~pass_ms (),
        sim_ms )

let compute_registry ~(kernel : Kernel.t) ~(block_size : int) ~(n : int)
    ~(seed : int) (inst : Kernel.instance) : string * float =
  let mk = payload ~name:kernel.Kernel.tag ~kind:"registry" ~block_size ~n in
  let report = Checker.check_func inst.Kernel.func in
  match check_ids_of report with
  | _ :: _ as ids ->
      (mk ~status:"check-failed" ~check_ids:ids ~correct:false (), 0.)
  | [] ->
      let t_all0 = Unix.gettimeofday () in
      let r = E.run ~transform:E.darm_default ~seed ~n kernel ~block_size in
      let t_all = (Unix.gettimeofday () -. t_all0) *. 1000. in
      (* the experiment times its own transform (t_ms); the remainder
         of its wall is dominated by the two simulations *)
      let sim_ms = Float.max 0. (t_all -. r.E.t_ms) in
      ( mk ~status:"ok" ~rewrites:r.E.rewrites
          ~base:(r.E.base.Metrics.cycles, r.E.base.Metrics.divergent_branches)
          ~opt:(r.E.opt.Metrics.cycles, r.E.opt.Metrics.divergent_branches)
          ~correct:r.E.correct ~pass_ms:r.E.t_ms (),
        sim_ms )

(* ------------------------------------------------------------------ *)
(* Per-spec processing                                                 *)

type outcome = {
  oc_line : string;
  oc_hit : bool;
  oc_status : string;
  oc_correct : bool;
  oc_pass_ms : float;
  oc_sim_ms : float;
  oc_lookup_ms : float;
  oc_spec_ms : float;
  oc_key : string option;
  oc_worker : int;
  oc_seq : int;
}

let line_flags (line : string) : string * bool * float =
  match J.parse line with
  | Error _ -> ("error", false, 0.)
  | Ok j ->
      let status =
        match J.member "status" j with Some (J.Str s) -> s | _ -> "ok"
      in
      let correct =
        match J.member "correct" j with Some (J.Bool b) -> b | _ -> true
      in
      let pass_ms =
        match J.member "pass_ms" j with
        | Some (J.Float f) -> f
        | Some (J.Int i) -> float_of_int i
        | _ -> 0.
      in
      (status, correct, pass_ms)

(* (printed IR, workload signature, compute thunk) — everything the
   content-addressed key needs, plus the way to fill a miss *)
let prepare (spec : spec) : string * string * (unit -> string * float) =
  match spec with
  | Fuzz f ->
      let cfg =
        match fuzz_cfg ~smoke:f.fz_smoke ~features:f.fz_features with
        | Ok c -> c
        | Error e -> failwith e
      in
      let f0 = Gen.generate ~cfg ~seed:f.fz_seed () in
      (match f.fz_inject with
      | None -> ()
      | Some tag -> (
          match Mutate.of_tag tag with
          | None -> failwith (Printf.sprintf "unknown inject tag %s" tag)
          | Some bug -> (
              match Mutate.inject bug f0 with
              | Ok () -> ()
              | Error e -> failwith (Printf.sprintf "inject %s: %s" tag e))));
      let ir = Printer.func_to_string f0 in
      let workload =
        Printf.sprintf "kind=fuzz|bs=%d|n=%d|input_seed=%d|warp=%d%s"
          f.fz_block_size cfg.Gen.array_size f.fz_seed
          Simulator.default_config.Simulator.warp_size
          (match f.fz_inject with
          | None -> ""
          | Some tag -> "|inject=" ^ tag)
      in
      ( ir,
        workload,
        fun () ->
          compute_fuzz ~cfg ~seed:f.fz_seed ~block_size:f.fz_block_size
            ~name:(spec_name spec) f0 )
  | Registry r -> (
      match Registry.find_any r.rs_tag with
      | None -> failwith (Printf.sprintf "unknown kernel %s" r.rs_tag)
      | Some kernel ->
          let block_size =
            match (r.rs_block_size, kernel.Kernel.block_sizes) with
            | Some b, _ -> b
            | None, b :: _ -> b
            | None, [] -> 64
          in
          let n = Option.value r.rs_n ~default:kernel.Kernel.default_n in
          let inst =
            kernel.Kernel.make ~seed:r.rs_seed ~block_size ~n
          in
          let ir = Printer.func_to_string inst.Kernel.func in
          let workload =
            Printf.sprintf "kind=registry|tag=%s|bs=%d|n=%d|seed=%d|warp=%d"
              kernel.Kernel.tag block_size n r.rs_seed
              E.sim_config.Simulator.warp_size
          in
          ( ir,
            workload,
            fun () ->
              compute_registry ~kernel ~block_size ~n ~seed:r.rs_seed inst ))

let process ?(cache : Cache.t option) (spec : spec) : outcome =
  let t_spec0 = Unix.gettimeofday () in
  let finish ~hit ~lookup_ms ~sim_ms ~key line =
    let status, correct, pass_ms = line_flags line in
    {
      oc_line = line;
      oc_hit = hit;
      oc_status = status;
      oc_correct = correct;
      oc_pass_ms = pass_ms;
      oc_sim_ms = sim_ms;
      oc_lookup_ms = lookup_ms;
      oc_spec_ms = (Unix.gettimeofday () -. t_spec0) *. 1000.;
      oc_key = key;
      oc_worker = 0;
      oc_seq = 0;
    }
  in
  let error_line detail =
    payload ~name:(spec_name spec) ~kind:(spec_kind spec) ~block_size:0 ~n:0
      ~status:"error" ~correct:false ~detail ()
  in
  match prepare spec with
  | exception e ->
      finish ~hit:false ~lookup_ms:0. ~sim_ms:0. ~key:None
        (error_line (Printexc.to_string e))
  | ir, workload, compute -> (
      let key =
        Option.map (fun c -> Cache.key c [ ir; pass_sig; workload ]) cache
      in
      let t_lookup0 = Unix.gettimeofday () in
      let hit =
        match (cache, key) with
        | Some c, Some k -> Cache.find c ~key:k
        | _ -> None
      in
      let lookup_ms =
        match cache with
        | None -> 0.
        | Some _ -> (Unix.gettimeofday () -. t_lookup0) *. 1000.
      in
      match hit with
      | Some bytes -> finish ~hit:true ~lookup_ms ~sim_ms:0. ~key bytes
      | None -> (
          match compute () with
          | exception e ->
              finish ~hit:false ~lookup_ms ~sim_ms:0. ~key
                (error_line (Printexc.to_string e))
          | line, sim_ms ->
              (* the cache is best-effort: an unwritable directory must
                 not fail a run whose results are already in hand *)
              (match (cache, key) with
              | Some c, Some k -> (
                  try Cache.store c ~key:k line with _ -> ())
              | _ -> ());
              finish ~hit:false ~lookup_ms ~sim_ms ~key line))

(* ------------------------------------------------------------------ *)
(* The sharded driver                                                  *)

let chunk_size = 64

let chunks (l : 'a list) : 'a list list =
  let rec take k = function
    | [] -> ([], [])
    | x :: tl when k > 0 ->
        let a, b = take (k - 1) tl in
        (x :: a, b)
    | l -> ([], l)
  in
  let rec go = function
    | [] -> []
    | l ->
        let c, rest = take chunk_size l in
        c :: go rest
  in
  go l

type summary = {
  bt_total : int;
  bt_run : int;
  bt_hits : int;
  bt_misses : int;
  bt_incorrect : int;
  bt_check_failed : int;
  bt_errors : int;
  bt_wall_s : float;
  bt_budget_exhausted : bool;
  bt_pass_ms_p99 : float option;
  bt_stalled : int;
}

let hit_rate (s : summary) : float =
  if s.bt_run = 0 then 0. else float_of_int s.bt_hits /. float_of_int s.bt_run

let kernels_per_sec (s : summary) : float =
  if s.bt_wall_s <= 0. then 0.
  else float_of_int s.bt_run /. s.bt_wall_s

let to_batch_stats (s : summary) : History.batch =
  {
    History.b_kernels = s.bt_run;
    b_hits = s.bt_hits;
    b_misses = s.bt_misses;
    b_incorrect = s.bt_incorrect;
    b_wall_s = s.bt_wall_s;
    b_pass_ms_p99 = s.bt_pass_ms_p99;
  }

(* ------------------------------------------------------------------ *)
(* Telemetry plumbing                                                  *)

module Ev = Darm_obs.Events
module Snapshot = Darm_obs.Snapshot
module Health = Darm_obs.Health

(* finer-grained than MR.default_buckets: cache lookups are tens of
   microseconds, pass runs single-digit milliseconds *)
let latency_buckets =
  [ 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.;
    250.; 500.; 1000.; 2500.; 5000.; 10000. ]

(* exact nearest-rank percentile over raw samples (the summary's p99;
   the registry histograms answer the same question approximately) *)
let exact_percentile (samples : float list) (q : float) : float option =
  match samples with
  | [] -> None
  | _ ->
      let a = Array.of_list samples in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
      Some a.(max 0 (min (n - 1) rank))

(* live run state shared between pool workers (under [lv_mutex]), the
   coordinator and the monitor domain *)
type live = {
  lv_reg : MR.t;
  lv_mutex : Mutex.t;
  lv_done : int Atomic.t;
  lv_total : int;
  lv_jobs : int;
  lv_t0 : float;
  lv_health : Health.t;
  lv_cache : Cache.t option;
  mutable lv_cache_base : Cache.stats option;  (* stats at run start *)
  mutable lv_cache_synced : Cache.stats option;  (* last delta-synced *)
  lv_hb_synced : int array;  (* heartbeats already exported per worker *)
}

let with_reg (lv : live) (f : MR.t -> 'a) : 'a =
  Mutex.lock lv.lv_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock lv.lv_mutex) (fun () -> f lv.lv_reg)

let make_live ?registry ~jobs ~total ~t0 ~stall_deadline_s cache : live =
  let reg = match registry with Some r -> r | None -> MR.create () in
  let lv =
    {
      lv_reg = reg;
      lv_mutex = Mutex.create ();
      lv_done = Atomic.make 0;
      lv_total = total;
      lv_jobs = jobs;
      lv_t0 = t0;
      lv_health = Health.create ~workers:jobs ~deadline_s:stall_deadline_s;
      lv_cache = cache;
      lv_cache_base = Option.map Cache.stats cache;
      lv_cache_synced = Option.map Cache.stats cache;
      lv_hb_synced = Array.make jobs 0;
    }
  in
  (* pre-register the counter/gauge families so the very first snapshot
     already shows them (at zero) to external observers *)
  with_reg lv (fun reg ->
      let count name help = MR.inc reg ~by:0. name; MR.help reg name help in
      count "darm_batch_kernels_total" "Manifest entries processed";
      count "darm_batch_cache_hits_total" "Result-cache hits";
      count "darm_batch_cache_misses_total" "Result-cache misses (computed)";
      count "darm_batch_incorrect_total"
        "Kernels whose melded output mismatched the baseline";
      count "darm_batch_check_failed_total"
        "Checker-rejected kernels (never simulated)";
      count "darm_batch_errors_total" "Crashed or invalid manifest entries";
      MR.set reg "darm_batch_total" (float_of_int total);
      MR.help reg "darm_batch_total" "Manifest entries in the run";
      MR.set reg "darm_batch_done" 0.;
      MR.help reg "darm_batch_done" "Entries completed so far";
      MR.set reg "darm_run_health" 1.;
      MR.help reg "darm_run_health"
        "1 - stalled_workers/workers (1 = all workers making progress)");
  lv

(* per-spec accounting, called by pool workers *)
let observe_outcome (lv : live) (o : outcome) : unit =
  Atomic.incr lv.lv_done;
  Health.beat lv.lv_health ~worker:o.oc_worker ~now:(Unix.gettimeofday ());
  with_reg lv (fun reg ->
      MR.inc reg "darm_batch_kernels_total";
      if o.oc_hit then MR.inc reg "darm_batch_cache_hits_total"
      else MR.inc reg "darm_batch_cache_misses_total";
      (match o.oc_status with
      | "ok" -> if not o.oc_correct then MR.inc reg "darm_batch_incorrect_total"
      | "check-failed" -> MR.inc reg "darm_batch_check_failed_total"
      | _ -> MR.inc reg "darm_batch_errors_total");
      if lv.lv_cache <> None then begin
        MR.observe reg ~buckets:latency_buckets "darm_batch_cache_lookup_ms"
          o.oc_lookup_ms;
        MR.help reg "darm_batch_cache_lookup_ms"
          "Result-cache lookup wall per spec (ms)"
      end;
      if (not o.oc_hit) && o.oc_status = "ok" then begin
        MR.observe reg ~buckets:latency_buckets "darm_batch_pass_ms"
          o.oc_pass_ms;
        MR.help reg "darm_batch_pass_ms"
          "Meld-pass wall per computed spec (ms)";
        MR.observe reg ~buckets:latency_buckets "darm_batch_sim_ms" o.oc_sim_ms;
        MR.help reg "darm_batch_sim_ms"
          "Simulation wall per computed spec (ms)"
      end;
      MR.observe reg ~buckets:latency_buckets "darm_batch_spec_ms" o.oc_spec_ms;
      MR.help reg "darm_batch_spec_ms" "End-to-end wall per spec (ms)")

(* refresh the derived gauges, worker states/heartbeats and cache
   deltas; called on the monitor cadence and once at run end *)
let update_gauges (lv : live) ~(now : float) : unit =
  with_reg lv (fun reg ->
      let d = Atomic.get lv.lv_done in
      let wall = now -. lv.lv_t0 in
      MR.set reg "darm_batch_done" (float_of_int d);
      MR.set reg "darm_batch_wall_seconds" wall;
      MR.help reg "darm_batch_wall_seconds" "Wall-clock of the batch run";
      MR.set reg "darm_batch_kernels_per_sec"
        (if wall > 0. then float_of_int d /. wall else 0.);
      MR.help reg "darm_batch_kernels_per_sec"
        "Batch throughput over the whole run";
      let hits =
        Option.value ~default:0. (MR.find reg "darm_batch_cache_hits_total")
      in
      MR.set reg "darm_batch_cache_hit_rate"
        (if d > 0 then hits /. float_of_int d else 0.);
      MR.help reg "darm_batch_cache_hit_rate"
        "Hits over processed entries, 0..1";
      MR.set reg "darm_run_health" (Health.health lv.lv_health);
      for w = 0 to lv.lv_jobs - 1 do
        let labels = [ ("worker", string_of_int w) ] in
        MR.set reg ~labels "darm_worker_state"
          (float_of_int
             (Health.state_code (Health.state lv.lv_health ~worker:w)));
        MR.help reg "darm_worker_state"
          "Pool worker state: 0 idle, 1 busy, 2 stalled";
        let beats = Health.beats lv.lv_health ~worker:w in
        let delta = beats - lv.lv_hb_synced.(w) in
        if delta > 0 then begin
          MR.inc reg ~labels ~by:(float_of_int delta)
            "darm_worker_heartbeats_total";
          MR.help reg "darm_worker_heartbeats_total"
            "Specs completed per pool worker";
          lv.lv_hb_synced.(w) <- beats
        end
      done;
      (match (lv.lv_cache, lv.lv_cache_synced) with
      | Some c, Some last ->
          let s = Cache.stats c in
          let delta name v =
            if v > 0 then MR.inc reg ~by:(float_of_int v) name
          in
          delta "darm_cache_hits_total" (s.Cache.st_hits - last.Cache.st_hits);
          MR.help reg "darm_cache_hits_total"
            "Result-cache lookups served from disk";
          delta "darm_cache_misses_total"
            (s.Cache.st_misses - last.Cache.st_misses);
          MR.help reg "darm_cache_misses_total"
            "Result-cache lookups that found no usable entry";
          delta "darm_cache_evictions_total"
            (s.Cache.st_evictions - last.Cache.st_evictions);
          MR.help reg "darm_cache_evictions_total" "Entries removed by clear";
          delta "darm_cache_poison_evictions_total"
            (s.Cache.st_poison_evictions - last.Cache.st_poison_evictions);
          MR.help reg "darm_cache_poison_evictions_total"
            "Corrupt/wrong-schema entries evicted on lookup";
          lv.lv_cache_synced <- Some s
      | _ -> ());
      (* the p99 gauge mirrors the histogram so flat scrapers get it *)
      match MR.find_series (MR.snapshot reg) "darm_batch_pass_ms" with
      | Some s -> (
          match MR.percentile s 0.99 with
          | Some p ->
              MR.set reg "darm_batch_pass_ms_p99" p;
              MR.help reg "darm_batch_pass_ms_p99"
                "p99 of darm_batch_pass_ms, estimated from its buckets"
          | None -> ())
      | None -> ())

let write_snapshot (lv : live) ~(base : string) : unit =
  (* best-effort: a full disk must not kill the run it observes *)
  try Snapshot.write ~base (with_reg lv MR.snapshot) with _ -> ()

let run ?jobs ?budget_s ?cache ?registry ?events ?snapshot
    ?(cadence_s = 1.0) ?(stall_deadline_s = 30.) ~(out : string)
    (specs : spec list) : summary =
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> t0 +. b) budget_s in
  let total = List.length specs in
  let jobs_n =
    max 1 (match jobs with Some j -> j | None -> PS.default_jobs ())
  in
  let hits = ref 0 and misses = ref 0 and run_n = ref 0 in
  let incorrect = ref 0 and check_failed = ref 0 and errors = ref 0 in
  let cut = ref false in
  let pass_samples = ref [] in
  let lv = make_live ?registry ~jobs:jobs_n ~total ~t0 ~stall_deadline_s cache in
  let sink = Option.map (fun path -> Ev.open_sink ~path) events in
  let emit ?rt ~ev fields =
    match sink with Some sk -> Ev.emit sk ?rt ~ev fields | None -> ()
  in
  (* per-worker sequence counters: each slot is only ever touched by
     its worker inside a chunk, and chunk boundaries join all domains *)
  let seqs = Array.make jobs_n 0 in
  let work ~worker spec =
    let o = process ?cache spec in
    let seq = seqs.(worker) in
    seqs.(worker) <- seq + 1;
    let o = { o with oc_worker = worker; oc_seq = seq } in
    observe_outcome lv o;
    o
  in
  (* the monitor: watchdog checks, gauge refresh and snapshot writes on
     the cadence, off the critical path *)
  let stop = Atomic.make false in
  let monitor =
    if events = None && snapshot = None then None
    else
      Some
        (Domain.spawn (fun () ->
             let rec loop () =
               let now = Unix.gettimeofday () in
               let newly = Health.check lv.lv_health ~now in
               List.iter
                 (fun w ->
                   emit ~ev:"stalled"
                     ~rt:[ ("wall_s", J.Float (now -. t0)) ]
                     [ ("worker", J.Int w) ])
                 newly;
               update_gauges lv ~now;
               (match snapshot with
               | Some base -> write_snapshot lv ~base
               | None -> ());
               if not (Atomic.get stop) then begin
                 let rec nap remaining =
                   if remaining > 0. && not (Atomic.get stop) then begin
                     Unix.sleepf (Float.min 0.05 remaining);
                     nap (remaining -. 0.05)
                   end
                 in
                 nap (Float.max 0.05 cadence_s);
                 loop ()
               end
             in
             loop ()))
  in
  let finish_telemetry () =
    Atomic.set stop true;
    Option.iter Domain.join monitor;
    update_gauges lv ~now:(Unix.gettimeofday ());
    (match snapshot with Some base -> write_snapshot lv ~base | None -> ());
    Option.iter Ev.close sink
  in
  emit ~ev:"run_start"
    ~rt:[ ("jobs", J.Int jobs_n) ]
    [
      ("total", J.Int total);
      ("chunk_size", J.Int chunk_size);
      ("cache", J.Bool (cache <> None));
      ("payload_schema", J.Str payload_schema);
    ];
  for w = 0 to jobs_n - 1 do
    emit ~ev:"worker_start" [ ("worker", J.Int w) ]
  done;
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 out
  in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      finish_telemetry ())
    (fun () ->
      List.iteri
        (fun ci chunk ->
          let past_deadline =
            match deadline with
            | Some d -> Unix.gettimeofday () > d
            | None -> false
          in
          if past_deadline then cut := true
          else begin
            let first = !run_n in
            emit ~ev:"chunk_start"
              [
                ("chunk", J.Int ci);
                ("size", J.Int (List.length chunk));
                ("first", J.Int first);
              ];
            for w = 0 to jobs_n - 1 do
              Health.set_busy lv.lv_health ~worker:w
                ~now:(Unix.gettimeofday ())
            done;
            let outs = PS.map_with ~jobs:jobs_n work chunk in
            for w = 0 to jobs_n - 1 do
              Health.set_idle lv.lv_health ~worker:w
            done;
            List.iteri
              (fun i o ->
                let gi = first + i in
                output_string oc o.oc_line;
                if o.oc_hit then incr hits else incr misses;
                (match o.oc_status with
                | "ok" ->
                    if not o.oc_correct then incr incorrect;
                    if not o.oc_hit then
                      pass_samples := o.oc_pass_ms :: !pass_samples
                | "check-failed" -> incr check_failed
                | _ -> incr errors);
                (* journal the spec lifecycle in manifest order: the
                   coordinator replays each chunk's outcomes after the
                   barrier, so core fields are deterministic and only
                   the rt envelope knows which worker served what *)
                emit ~ev:"spec_start"
                  [
                    ("spec", J.Int gi);
                    ("name", J.Str (spec_name (List.nth chunk i)));
                    ("kind", J.Str (spec_kind (List.nth chunk i)));
                    ("chunk", J.Int ci);
                  ];
                (match (cache, o.oc_key) with
                | Some _, Some k ->
                    emit
                      ~ev:(if o.oc_hit then "cache_hit" else "cache_miss")
                      ~rt:[ ("lookup_ms", J.Float o.oc_lookup_ms) ]
                      [ ("spec", J.Int gi); ("key", J.Str k) ]
                | _ -> ());
                emit ~ev:"spec_finish"
                  ~rt:
                    [
                      ("worker", J.Int o.oc_worker);
                      ("seq", J.Int o.oc_seq);
                      ("ms", J.Float o.oc_spec_ms);
                      ("pass_ms", J.Float o.oc_pass_ms);
                      ("sim_ms", J.Float o.oc_sim_ms);
                    ]
                  [
                    ("spec", J.Int gi);
                    ("status", J.Str o.oc_status);
                    ("hit", J.Bool o.oc_hit);
                    ("correct", J.Bool o.oc_correct);
                  ])
              outs;
            (* flush per chunk: a crash or budget cut leaves a valid
               JSONL prefix in manifest order *)
            flush oc;
            run_n := !run_n + List.length chunk;
            emit ~ev:"chunk_finish"
              ~rt:[ ("wall_s", J.Float (Unix.gettimeofday () -. t0)) ]
              [
                ("chunk", J.Int ci);
                ("done", J.Int !run_n);
                ("hits", J.Int !hits);
                ("misses", J.Int !misses);
                ("errors", J.Int !errors);
              ]
          end)
        (chunks specs);
      for w = 0 to jobs_n - 1 do
        emit ~ev:"worker_finish"
          [ ("worker", J.Int w) ]
          ~rt:[ ("beats", J.Int (Health.beats lv.lv_health ~worker:w)) ]
      done;
      let wall_s = Unix.gettimeofday () -. t0 in
      emit ~ev:"run_finish"
        ~rt:
          [
            ("wall_s", J.Float wall_s);
            ("stalled", J.Int (Health.stalled_total lv.lv_health));
          ]
        [
          ("total", J.Int total);
          ("run", J.Int !run_n);
          ("hits", J.Int !hits);
          ("misses", J.Int !misses);
          ("incorrect", J.Int !incorrect);
          ("check_failed", J.Int !check_failed);
          ("errors", J.Int !errors);
          ("budget_exhausted", J.Bool !cut);
        ]);
  {
    bt_total = total;
    bt_run = !run_n;
    bt_hits = !hits;
    bt_misses = !misses;
    bt_incorrect = !incorrect;
    bt_check_failed = !check_failed;
    bt_errors = !errors;
    bt_wall_s = Unix.gettimeofday () -. t0;
    bt_budget_exhausted = !cut;
    bt_pass_ms_p99 = exact_percentile !pass_samples 0.99;
    bt_stalled = Health.stalled_total lv.lv_health;
  }

let fill_metrics (reg : MR.t) (s : summary) : unit =
  let count name help v =
    MR.inc reg ~by:(float_of_int v) name;
    MR.help reg name help
  in
  count "darm_batch_kernels_total" "Manifest entries processed" s.bt_run;
  count "darm_batch_cache_hits_total" "Result-cache hits" s.bt_hits;
  count "darm_batch_cache_misses_total" "Result-cache misses (computed)"
    s.bt_misses;
  count "darm_batch_incorrect_total"
    "Kernels whose melded output mismatched the baseline" s.bt_incorrect;
  count "darm_batch_check_failed_total"
    "Checker-rejected kernels (never simulated)" s.bt_check_failed;
  count "darm_batch_errors_total" "Crashed or invalid manifest entries"
    s.bt_errors;
  MR.set reg "darm_batch_cache_hit_rate" (hit_rate s);
  MR.help reg "darm_batch_cache_hit_rate"
    "Hits over processed entries, 0..1";
  MR.set reg "darm_batch_kernels_per_sec" (kernels_per_sec s);
  MR.help reg "darm_batch_kernels_per_sec"
    "Batch throughput over the whole run";
  MR.set reg "darm_batch_wall_seconds" s.bt_wall_s;
  MR.help reg "darm_batch_wall_seconds" "Wall-clock of the batch run";
  match s.bt_pass_ms_p99 with
  | Some p ->
      MR.set reg "darm_batch_pass_ms_p99" p;
      MR.help reg "darm_batch_pass_ms_p99"
        "p99 pass_ms over the run's computed specs (exact)"
  | None -> ()

let summary_to_string (s : summary) : string =
  Printf.sprintf
    "batch: %d/%d kernel(s), %d hit(s) / %d miss(es), hit-rate %.1f%%, %.1f \
     kernels/s, %d incorrect, %d check-failed, %d error(s)%s"
    s.bt_run s.bt_total s.bt_hits s.bt_misses
    (hit_rate s *. 100.)
    (kernels_per_sec s) s.bt_incorrect s.bt_check_failed s.bt_errors
    (if s.bt_budget_exhausted then " [budget exhausted]" else "")
