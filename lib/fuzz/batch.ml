(* Fleet-scale batch driver.  See batch.mli and doc/fleet.md. *)

open Darm_ir
module J = Darm_obs.Json
module MR = Darm_obs.Metrics_registry
module Fsio = Darm_obs.Fsio
module Cache = Darm_harness.Result_cache
module History = Darm_harness.History
module PS = Darm_harness.Parallel_sweep
module E = Darm_harness.Experiment
module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry
module Memory = Darm_sim.Memory
module Simulator = Darm_sim.Simulator
module Metrics = Darm_sim.Metrics
module Checker = Darm_checks.Checker
module Diag = Darm_checks.Diag
module Pass = Darm_core.Pass

let manifest_schema = "darm-manifest-v1"

let payload_schema = Cache.default_schema

(* ------------------------------------------------------------------ *)
(* Manifest specs                                                      *)

type spec =
  | Registry of {
      rs_tag : string;
      rs_block_size : int option;
      rs_n : int option;
      rs_seed : int;
    }
  | Fuzz of {
      fz_seed : int;
      fz_block_size : int;
      fz_smoke : bool;
      fz_features : string;
    }

let spec_name = function
  | Registry r -> r.rs_tag
  | Fuzz f -> Printf.sprintf "fuzz_%d" f.fz_seed

let spec_kind = function Registry _ -> "registry" | Fuzz _ -> "fuzz"

let fuzz_cfg ~smoke ~features : (Gen.cfg, string) result =
  match Gen.features_of_string features with
  | Error e -> Error e
  | Ok fs ->
      Ok
        {
          (if smoke then Gen.smoke_cfg else Gen.default_cfg) with
          Gen.features = fs;
        }

let spec_to_json = function
  | Registry r ->
      J.Obj
        ([ ("kind", J.Str "registry"); ("kernel", J.Str r.rs_tag) ]
        @ (match r.rs_block_size with
          | None -> []
          | Some b -> [ ("block_size", J.Int b) ])
        @ (match r.rs_n with None -> [] | Some n -> [ ("n", J.Int n) ])
        @ [ ("seed", J.Int r.rs_seed) ])
  | Fuzz f ->
      J.Obj
        [
          ("kind", J.Str "fuzz");
          ("seed", J.Int f.fz_seed);
          ("block_size", J.Int f.fz_block_size);
          ("profile", J.Str (if f.fz_smoke then "smoke" else "default"));
          ("features", J.Str f.fz_features);
        ]

(* tolerant accessors in the style of History: ints may arrive as
   floats from other JSON emitters *)
let get_int j k =
  match J.member k j with
  | Some (J.Int i) -> Ok i
  | Some (J.Float f) when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "missing int field %S" k)

let get_int_opt j k ~default =
  match J.member k j with None -> Ok default | Some _ -> get_int j k

let get_str_opt j k ~default =
  match J.member k j with
  | None -> Ok default
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" k)

let ( let* ) = Result.bind

let spec_of_json (j : J.t) : (spec, string) result =
  match J.member "kind" j with
  | Some (J.Str "registry") ->
      let* tag =
        match J.member "kernel" j with
        | Some (J.Str s) -> Ok s
        | _ -> Error "missing string field \"kernel\""
      in
      let* block_size =
        match J.member "block_size" j with
        | None -> Ok None
        | Some _ -> Result.map Option.some (get_int j "block_size")
      in
      let* n =
        match J.member "n" j with
        | None -> Ok None
        | Some _ -> Result.map Option.some (get_int j "n")
      in
      let* seed = get_int_opt j "seed" ~default:2022 in
      Ok
        (Registry
           { rs_tag = tag; rs_block_size = block_size; rs_n = n;
             rs_seed = seed })
  | Some (J.Str "fuzz") ->
      let* seed = get_int j "seed" in
      let* block_size = get_int_opt j "block_size" ~default:64 in
      let* profile = get_str_opt j "profile" ~default:"smoke" in
      let* smoke =
        match profile with
        | "smoke" -> Ok true
        | "default" -> Ok false
        | p -> Error (Printf.sprintf "unknown profile %S (smoke|default)" p)
      in
      let* features = get_str_opt j "features" ~default:"all" in
      let* cfg = fuzz_cfg ~smoke ~features in
      if cfg.Gen.array_size < block_size then
        Error
          (Printf.sprintf
             "block_size %d exceeds the profile's array_size %d (the \
              generated kernel would race against itself)"
             block_size cfg.Gen.array_size)
      else
        Ok
          (Fuzz
             { fz_seed = seed; fz_block_size = block_size; fz_smoke = smoke;
               fz_features = features })
  | Some (J.Str other) ->
      Error (Printf.sprintf "unknown kind %S (registry|fuzz)" other)
  | _ -> Error "missing string field \"kind\""

let read_manifest (path : string) : (spec list, string) result =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else
    let text = Fsio.read_file path in
    let lines = String.split_on_char '\n' text in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest when String.trim line = "" -> go (i + 1) acc rest
      | line :: rest -> (
          match J.parse line with
          | Error e ->
              Error (Printf.sprintf "%s:%d: invalid JSON: %s" path i e)
          | Ok j -> (
              match spec_of_json j with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path i e)
              | Ok s -> go (i + 1) (s :: acc) rest))
    in
    go 1 [] lines

let write_fuzz_manifest ~path ~count ?(seed_start = 0) ?(block_size = 64)
    ?(smoke = true) ?(features = "all") () : unit =
  (match fuzz_cfg ~smoke ~features with
  | Error e -> invalid_arg ("Batch.write_fuzz_manifest: " ^ e)
  | Ok cfg ->
      if cfg.Gen.array_size < block_size then
        invalid_arg
          (Printf.sprintf
             "Batch.write_fuzz_manifest: block_size %d > array_size %d"
             block_size cfg.Gen.array_size));
  let b = Buffer.create (count * 64) in
  for i = 0 to count - 1 do
    J.to_buffer b
      (spec_to_json
         (Fuzz
            {
              fz_seed = seed_start + i;
              fz_block_size = block_size;
              fz_smoke = smoke;
              fz_features = features;
            }));
    Buffer.add_char b '\n'
  done;
  Fsio.write_atomic ~path (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Result payloads                                                     *)

(* the cache key must cover everything a payload depends on: any change
   to the pass configuration (or this signature's format) starts a
   fresh key space *)
let pass_sig : string =
  let c = Pass.default_config in
  let l = c.Pass.latency in
  Printf.sprintf
    "darm|pairing=%s|threshold=%g|unpredicate=%b|diamonds_only=%b|max_iterations=%d|run_cleanups=%b|if_convert_after=%b|validate=none|lat=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d"
    (match c.Pass.pairing with
    | Pass.Greedy -> "greedy"
    | Pass.Alignment -> "alignment")
    c.Pass.threshold c.Pass.unpredicate c.Pass.diamonds_only
    c.Pass.max_iterations c.Pass.run_cleanups c.Pass.if_convert_after
    l.Darm_analysis.Latency.alu l.Darm_analysis.Latency.mul
    l.Darm_analysis.Latency.div l.Darm_analysis.Latency.falu
    l.Darm_analysis.Latency.fdiv l.Darm_analysis.Latency.cast
    l.Darm_analysis.Latency.select l.Darm_analysis.Latency.branch
    l.Darm_analysis.Latency.shared_mem l.Darm_analysis.Latency.global_mem
    l.Darm_analysis.Latency.flat_mem l.Darm_analysis.Latency.barrier
    l.Darm_analysis.Latency.intrinsic

let payload ~name ~kind ~block_size ~n ~status ?(check_ids = [])
    ?(rewrites = 0) ?(base = (0, 0)) ?(opt = (0, 0)) ?(correct = true)
    ?(pass_ms = 0.) ?detail () : string =
  let base_cycles, base_div = base and opt_cycles, opt_div = opt in
  J.to_string
    (J.Obj
       ([
          ("schema", J.Str payload_schema);
          ("name", J.Str name);
          ("kind", J.Str kind);
          ("block_size", J.Int block_size);
          ("n", J.Int n);
          ("status", J.Str status);
          ("check_errors", J.Int (List.length check_ids));
          ("check_ids", J.List (List.map (fun s -> J.Str s) check_ids));
          ("rewrites", J.Int rewrites);
          ("base_cycles", J.Int base_cycles);
          ("opt_cycles", J.Int opt_cycles);
          ("divergent_branches_base", J.Int base_div);
          ("divergent_branches_opt", J.Int opt_div);
          ("correct", J.Bool correct);
          ("pass_ms", J.Float pass_ms);
        ]
       @ match detail with None -> [] | Some d -> [ ("detail", J.Str d) ]))
  ^ "\n"

(* run a fuzz kernel over the two-array workload (same discipline as
   Oracle.exec: deterministic inputs from the seed, warp size 64) *)
let exec_fuzz ~(n : int) ~(block_size : int) ~(input_seed : int)
    (f : Ssa.func) : Metrics.t * Memory.rv array =
  let a_init = Kernel.random_int_array ~seed:(input_seed + 1) ~n ~bound:1000 in
  let b_init = Kernel.random_int_array ~seed:(input_seed + 2) ~n ~bound:1000 in
  let global = Memory.create ~space:Memory.Sp_global (2 * n) in
  let pa = Memory.alloc_of_int_array global a_init in
  let pb = Memory.alloc_of_int_array global b_init in
  let config =
    { Simulator.default_config with max_cycles_per_warp = 10_000_000 }
  in
  let launch =
    { Simulator.grid_dim = max 1 (n / block_size); block_dim = block_size }
  in
  let m = Simulator.run ~config f ~args:[| pa; pb |] ~global launch in
  let out =
    Array.append
      (Memory.read_int_array global pa n)
      (Memory.read_int_array global pb n)
    |> Kernel.ints
  in
  (m, out)

let check_ids_of report =
  List.map (fun (d : Diag.t) -> d.Diag.id) (Checker.errors report)
  |> List.sort_uniq compare

let compute_fuzz ~(cfg : Gen.cfg) ~(seed : int) ~(block_size : int)
    ~(name : string) (f0 : Ssa.func) : string =
  let n = cfg.Gen.array_size in
  let mk = payload ~name ~kind:"fuzz" ~block_size ~n in
  let report = Checker.check_func f0 in
  match check_ids_of report with
  | _ :: _ as ids ->
      (* checker-flagged kernels are never executed (the oracle's rule) *)
      mk ~status:"check-failed" ~check_ids:ids ~correct:false ()
  | [] ->
      let base_m, base_out = exec_fuzz ~n ~block_size ~input_seed:seed f0 in
      let f1 = Gen.generate ~cfg ~seed () in
      let t0 = Unix.gettimeofday () in
      let stats = Pass.run f1 in
      let pass_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let opt_m, opt_out = exec_fuzz ~n ~block_size ~input_seed:seed f1 in
      let correct =
        Kernel.rv_array_equal base_out opt_out
        && base_m.Metrics.cycles > 0
        && opt_m.Metrics.cycles > 0
      in
      mk ~status:"ok" ~rewrites:stats.Pass.melds_applied
        ~base:(base_m.Metrics.cycles, base_m.Metrics.divergent_branches)
        ~opt:(opt_m.Metrics.cycles, opt_m.Metrics.divergent_branches)
        ~correct ~pass_ms ()

let compute_registry ~(kernel : Kernel.t) ~(block_size : int) ~(n : int)
    ~(seed : int) (inst : Kernel.instance) : string =
  let mk = payload ~name:kernel.Kernel.tag ~kind:"registry" ~block_size ~n in
  let report = Checker.check_func inst.Kernel.func in
  match check_ids_of report with
  | _ :: _ as ids -> mk ~status:"check-failed" ~check_ids:ids ~correct:false ()
  | [] ->
      let r = E.run ~transform:E.darm_default ~seed ~n kernel ~block_size in
      mk ~status:"ok" ~rewrites:r.E.rewrites
        ~base:(r.E.base.Metrics.cycles, r.E.base.Metrics.divergent_branches)
        ~opt:(r.E.opt.Metrics.cycles, r.E.opt.Metrics.divergent_branches)
        ~correct:r.E.correct ~pass_ms:r.E.t_ms ()

(* ------------------------------------------------------------------ *)
(* Per-spec processing                                                 *)

type outcome = {
  oc_line : string;
  oc_hit : bool;
  oc_status : string;
  oc_correct : bool;
}

let line_flags (line : string) : string * bool =
  match J.parse line with
  | Error _ -> ("error", false)
  | Ok j ->
      let status =
        match J.member "status" j with Some (J.Str s) -> s | _ -> "ok"
      in
      let correct =
        match J.member "correct" j with Some (J.Bool b) -> b | _ -> true
      in
      (status, correct)

let outcome_of_line ~hit line =
  let status, correct = line_flags line in
  { oc_line = line; oc_hit = hit; oc_status = status; oc_correct = correct }

(* (printed IR, workload signature, compute thunk) — everything the
   content-addressed key needs, plus the way to fill a miss *)
let prepare (spec : spec) : string * string * (unit -> string) =
  match spec with
  | Fuzz f ->
      let cfg =
        match fuzz_cfg ~smoke:f.fz_smoke ~features:f.fz_features with
        | Ok c -> c
        | Error e -> failwith e
      in
      let f0 = Gen.generate ~cfg ~seed:f.fz_seed () in
      let ir = Printer.func_to_string f0 in
      let workload =
        Printf.sprintf "kind=fuzz|bs=%d|n=%d|input_seed=%d|warp=%d"
          f.fz_block_size cfg.Gen.array_size f.fz_seed
          Simulator.default_config.Simulator.warp_size
      in
      ( ir,
        workload,
        fun () ->
          compute_fuzz ~cfg ~seed:f.fz_seed ~block_size:f.fz_block_size
            ~name:(spec_name spec) f0 )
  | Registry r -> (
      match Registry.find_any r.rs_tag with
      | None -> failwith (Printf.sprintf "unknown kernel %s" r.rs_tag)
      | Some kernel ->
          let block_size =
            match (r.rs_block_size, kernel.Kernel.block_sizes) with
            | Some b, _ -> b
            | None, b :: _ -> b
            | None, [] -> 64
          in
          let n = Option.value r.rs_n ~default:kernel.Kernel.default_n in
          let inst =
            kernel.Kernel.make ~seed:r.rs_seed ~block_size ~n
          in
          let ir = Printer.func_to_string inst.Kernel.func in
          let workload =
            Printf.sprintf "kind=registry|tag=%s|bs=%d|n=%d|seed=%d|warp=%d"
              kernel.Kernel.tag block_size n r.rs_seed
              E.sim_config.Simulator.warp_size
          in
          ( ir,
            workload,
            fun () ->
              compute_registry ~kernel ~block_size ~n ~seed:r.rs_seed inst ))

let process ?(cache : Cache.t option) (spec : spec) : outcome =
  let error_line detail =
    payload ~name:(spec_name spec) ~kind:(spec_kind spec) ~block_size:0 ~n:0
      ~status:"error" ~correct:false ~detail ()
  in
  match prepare spec with
  | exception e -> outcome_of_line ~hit:false (error_line (Printexc.to_string e))
  | ir, workload, compute -> (
      let key =
        Option.map (fun c -> Cache.key c [ ir; pass_sig; workload ]) cache
      in
      let hit =
        match (cache, key) with
        | Some c, Some k -> Cache.find c ~key:k
        | _ -> None
      in
      match hit with
      | Some bytes -> outcome_of_line ~hit:true bytes
      | None -> (
          match compute () with
          | exception e ->
              outcome_of_line ~hit:false (error_line (Printexc.to_string e))
          | line ->
              (* the cache is best-effort: an unwritable directory must
                 not fail a run whose results are already in hand *)
              (match (cache, key) with
              | Some c, Some k -> (
                  try Cache.store c ~key:k line with _ -> ())
              | _ -> ());
              outcome_of_line ~hit:false line))

(* ------------------------------------------------------------------ *)
(* The sharded driver                                                  *)

let chunk_size = 64

let chunks (l : 'a list) : 'a list list =
  let rec take k = function
    | [] -> ([], [])
    | x :: tl when k > 0 ->
        let a, b = take (k - 1) tl in
        (x :: a, b)
    | l -> ([], l)
  in
  let rec go = function
    | [] -> []
    | l ->
        let c, rest = take chunk_size l in
        c :: go rest
  in
  go l

type summary = {
  bt_total : int;
  bt_run : int;
  bt_hits : int;
  bt_misses : int;
  bt_incorrect : int;
  bt_check_failed : int;
  bt_errors : int;
  bt_wall_s : float;
  bt_budget_exhausted : bool;
}

let hit_rate (s : summary) : float =
  if s.bt_run = 0 then 0. else float_of_int s.bt_hits /. float_of_int s.bt_run

let kernels_per_sec (s : summary) : float =
  if s.bt_wall_s <= 0. then 0.
  else float_of_int s.bt_run /. s.bt_wall_s

let to_batch_stats (s : summary) : History.batch =
  {
    History.b_kernels = s.bt_run;
    b_hits = s.bt_hits;
    b_misses = s.bt_misses;
    b_incorrect = s.bt_incorrect;
    b_wall_s = s.bt_wall_s;
  }

let run ?jobs ?budget_s ?cache ~(out : string) (specs : spec list) : summary =
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> t0 +. b) budget_s in
  let total = List.length specs in
  let hits = ref 0 and misses = ref 0 and run_n = ref 0 in
  let incorrect = ref 0 and check_failed = ref 0 and errors = ref 0 in
  let cut = ref false in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 out
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun chunk ->
          let past_deadline =
            match deadline with
            | Some d -> Unix.gettimeofday () > d
            | None -> false
          in
          if past_deadline then cut := true
          else begin
            let outs = PS.map ?jobs (process ?cache) chunk in
            List.iter
              (fun o ->
                output_string oc o.oc_line;
                if o.oc_hit then incr hits else incr misses;
                match o.oc_status with
                | "ok" -> if not o.oc_correct then incr incorrect
                | "check-failed" -> incr check_failed
                | _ -> incr errors)
              outs;
            (* flush per chunk: a crash or budget cut leaves a valid
               JSONL prefix in manifest order *)
            flush oc;
            run_n := !run_n + List.length chunk
          end)
        (chunks specs));
  {
    bt_total = total;
    bt_run = !run_n;
    bt_hits = !hits;
    bt_misses = !misses;
    bt_incorrect = !incorrect;
    bt_check_failed = !check_failed;
    bt_errors = !errors;
    bt_wall_s = Unix.gettimeofday () -. t0;
    bt_budget_exhausted = !cut;
  }

let fill_metrics (reg : MR.t) (s : summary) : unit =
  let count name help v =
    MR.inc reg ~by:(float_of_int v) name;
    MR.help reg name help
  in
  count "darm_batch_kernels_total" "Manifest entries processed" s.bt_run;
  count "darm_batch_cache_hits_total" "Result-cache hits" s.bt_hits;
  count "darm_batch_cache_misses_total" "Result-cache misses (computed)"
    s.bt_misses;
  count "darm_batch_incorrect_total"
    "Kernels whose melded output mismatched the baseline" s.bt_incorrect;
  count "darm_batch_check_failed_total"
    "Checker-rejected kernels (never simulated)" s.bt_check_failed;
  count "darm_batch_errors_total" "Crashed or invalid manifest entries"
    s.bt_errors;
  MR.set reg "darm_batch_cache_hit_rate" (hit_rate s);
  MR.help reg "darm_batch_cache_hit_rate"
    "Hits over processed entries, 0..1";
  MR.set reg "darm_batch_kernels_per_sec" (kernels_per_sec s);
  MR.help reg "darm_batch_kernels_per_sec"
    "Batch throughput over the whole run";
  MR.set reg "darm_batch_wall_seconds" s.bt_wall_s;
  MR.help reg "darm_batch_wall_seconds" "Wall-clock of the batch run"

let summary_to_string (s : summary) : string =
  Printf.sprintf
    "batch: %d/%d kernel(s), %d hit(s) / %d miss(es), hit-rate %.1f%%, %.1f \
     kernels/s, %d incorrect, %d check-failed, %d error(s)%s"
    s.bt_run s.bt_total s.bt_hits s.bt_misses
    (hit_rate s *. 100.)
    (kernels_per_sec s) s.bt_incorrect s.bt_check_failed s.bt_errors
    (if s.bt_budget_exhausted then " [budget exhausted]" else "")
