(** Lockstep differential oracle.  See the interface for the matrix. *)

open Darm_ir
module Kernel = Darm_kernels.Kernel
module Memory = Darm_sim.Memory
module Simulator = Darm_sim.Simulator
module Metrics = Darm_sim.Metrics
module Checker = Darm_checks.Checker
module Diag = Darm_checks.Diag
module Pass = Darm_core.Pass
module T = Darm_transforms
module Report = Darm_harness.Report

(* ------------------------------------------------------------------ *)
(* Subjects                                                            *)

type subject = {
  sb_name : string;
  sb_fresh : unit -> Ssa.func;
  sb_block_size : int;
  sb_n : int;
  sb_input_seed : int;
}

let subject_of_seed ?(cfg = Gen.default_cfg) ?inject ~block_size ~seed () =
  (* threads of one block must own distinct [b] cells, or the generated
     kernel races against itself and the schedule oracle is unsound *)
  if cfg.Gen.array_size < block_size then
    invalid_arg
      (Printf.sprintf
         "Oracle.subject_of_seed: array_size %d < block_size %d breaks the \
          own-cell race-freedom discipline"
         cfg.Gen.array_size block_size);
  let name =
    match inject with
    | None -> Printf.sprintf "fuzz_%d" seed
    | Some bug -> Printf.sprintf "fuzz_%d+%s" seed (Mutate.tag bug)
  in
  {
    sb_name = name;
    sb_fresh =
      (fun () ->
        let f = Gen.generate ~cfg ~seed () in
        (match inject with
        | None -> ()
        | Some bug -> (
            match Mutate.inject bug f with
            | Ok () -> ()
            | Error e -> failwith ("inject: " ^ e)));
        f);
    sb_block_size = block_size;
    sb_n = cfg.Gen.array_size;
    sb_input_seed = seed;
  }

let subject_of_text ~name ~block_size ~n ~input_seed text =
  {
    sb_name = name;
    sb_fresh =
      (fun () ->
        match Parser.parse_func text with
        | Ok f -> f
        | Error e -> failwith ("parse: " ^ e));
    sb_block_size = block_size;
    sb_n = n;
    sb_input_seed = input_seed;
  }

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)

type stage = {
  st_name : string;
  st_apply : Ssa.func -> Pass.stats option;
}

let vfail config = { config with Pass.validate = Pass.Vfail }

let default_stages =
  [
    {
      st_name = "cleanups";
      st_apply =
        (fun f ->
          ignore (T.Simplify_cfg.run f);
          ignore (T.Constfold.run f);
          ignore (T.Dce.run f);
          None);
    };
    {
      st_name = "tail-merge";
      st_apply = (fun f -> ignore (T.Tail_merge.run f); None);
    };
    {
      st_name = "branch-fusion";
      st_apply =
        (fun f ->
          Some
            (Pass.run ~config:(vfail Pass.branch_fusion_config)
               ~verify_each:true f));
    };
    {
      st_name = "darm";
      st_apply =
        (fun f ->
          Some
            (Pass.run ~config:(vfail Pass.default_config) ~verify_each:true
               f));
    };
    {
      st_name = "darm-nounpred";
      st_apply =
        (fun f ->
          Some
            (Pass.run
               ~config:
                 (vfail { Pass.default_config with Pass.unpredicate = false })
               ~verify_each:true f));
    };
  ]

let warp_sizes = [ 64; 16; 4 ]

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)

type failure = {
  fl_subject : string;
  fl_stage : string;
  fl_kind : string;
  fl_detail : string;
}

let failure_key f = f.fl_stage ^ "/" ^ f.fl_kind

let failure_to_string f =
  Printf.sprintf "FAIL subject=%s stage=%s kind=%s :: %s" f.fl_subject
    f.fl_stage f.fl_kind f.fl_detail

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let exec ?(reconvergence = Simulator.Stack) subject (f : Ssa.func)
    ~(warp_size : int) : Metrics.t * Memory.rv array =
  let n = subject.sb_n in
  let seed = subject.sb_input_seed in
  let a_init = Kernel.random_int_array ~seed:(seed + 1) ~n ~bound:1000 in
  let b_init = Kernel.random_int_array ~seed:(seed + 2) ~n ~bound:1000 in
  let global = Memory.create ~space:Memory.Sp_global (2 * n) in
  let pa = Memory.alloc_of_int_array global a_init in
  let pb = Memory.alloc_of_int_array global b_init in
  let config =
    {
      Simulator.default_config with
      warp_size;
      max_cycles_per_warp = 10_000_000;
      reconvergence;
    }
  in
  let launch =
    {
      Simulator.grid_dim = max 1 (n / subject.sb_block_size);
      block_dim = subject.sb_block_size;
    }
  in
  let m = Simulator.run ~config f ~args:[| pa; pb |] ~global launch in
  let out =
    Array.append
      (Memory.read_int_array global pa n)
      (Memory.read_int_array global pb n)
    |> Kernel.ints
  in
  (m, out)

(* the independent-thread-scheduling model used by the cross-model
   differential legs below *)
let its_model = Simulator.Its Simulator.default_its_params

let mismatch_detail ~warp_size base out =
  match Kernel.first_mismatch base out with
  | None -> None
  | Some k ->
      Some
        (Printf.sprintf "warp=%d index=%d: %s vs %s" warp_size k
           (Kernel.rv_to_string base.(k))
           (Kernel.rv_to_string out.(k)))

(* Per-branch attribution invariants shared by both runs. *)
let metrics_invariants (m : Metrics.t) : string option =
  let stats = Metrics.branch_stats m in
  let neg = ref None in
  let sum_div = ref 0 and sum_reconv = ref 0 in
  List.iter
    (fun (id, (s : Metrics.branch_stat)) ->
      sum_div := !sum_div + s.Metrics.br_divergences;
      sum_reconv := !sum_reconv + s.Metrics.br_reconvergences;
      if
        s.Metrics.br_divergences < 0 || s.Metrics.br_cycles < 0
        || s.Metrics.br_lost_lane_cycles < 0
        || s.Metrics.br_reconvergences < 0
      then neg := Some id)
    stats;
  match !neg with
  | Some id -> Some (Printf.sprintf "negative branch counter at %s" id)
  | None ->
      if !sum_div <> m.Metrics.divergent_branches then
        Some
          (Printf.sprintf
             "per-branch splits sum to %d but divergent_branches = %d"
             !sum_div m.Metrics.divergent_branches)
      else if !sum_reconv > m.Metrics.reconvergences then
        Some
          (Printf.sprintf
             "per-branch reconvergences sum to %d > total %d" !sum_reconv
             m.Metrics.reconvergences)
      else None

let report_invariants subject ~stage:(_ : string) ~(stats : Pass.stats)
    ~(base : Metrics.t) ~(opt : Metrics.t) : string option =
  if List.length stats.Pass.melds <> stats.Pass.melds_applied then
    Some
      (Printf.sprintf "provenance holds %d records for %d applied melds"
         (List.length stats.Pass.melds)
         stats.Pass.melds_applied)
  else
    let r =
      Report.build ~kernel:subject.sb_name ~block_size:subject.sb_block_size
        ~seed:subject.sb_input_seed ~n:subject.sb_n ~correct:true
        ~rewrites:stats.Pass.melds_applied ~pass_ms:0. ~base ~opt
        ~melds:stats.Pass.melds ()
    in
    let saved =
      List.fold_left (fun acc row -> acc + Report.meld_saved row) 0
        r.Report.rp_melds
    in
    if saved + Report.residual r <> Report.delta r then
      Some
        (Printf.sprintf
           "exact-sum identity broken: melds %d + residual %d <> delta %d"
           saved (Report.residual r) (Report.delta r))
    else
      match metrics_invariants base with
      | Some e -> Some ("base: " ^ e)
      | None -> (
          match metrics_invariants opt with
          | Some e -> Some ("opt: " ^ e)
          | None -> None)

(* ------------------------------------------------------------------ *)
(* The matrix                                                          *)

let run_subject ?(stages = default_stages) ?(warps = warp_sizes) subject :
    failure list =
  let failures = ref [] in
  let fail stage kind detail =
    failures :=
      { fl_subject = subject.sb_name; fl_stage = stage; fl_kind = kind;
        fl_detail = detail }
      :: !failures
  in
  let done_ () = List.rev !failures in
  match subject.sb_fresh () with
  | exception e ->
      fail "base" "crash" (Printexc.to_string e);
      done_ ()
  | f0 -> (
      match Verify.run f0 with
      | _ :: _ as errs ->
          fail "base" "verifier"
            (String.concat "; "
               (List.map (fun (e : Verify.error) -> e.Verify.msg) errs));
          done_ ()
      | [] -> (
          let base_report = Checker.check_func f0 in
          match Checker.errors base_report with
          | d :: _ as ds ->
              (* a checker-flagged kernel is never executed: report and
                 stop (mutation-kill targets land here) *)
              fail "base"
                ("checker:" ^ d.Diag.id)
                (String.concat "; " (List.map Diag.to_string ds));
              done_ ()
          | [] -> (
              match exec subject f0 ~warp_size:64 with
              | exception e ->
                  fail "base" "crash" (Printexc.to_string e);
                  done_ ()
              | base_m, base_out ->
                  (* schedule independence of the untransformed kernel *)
                  List.iter
                    (fun ws ->
                      if ws <> 64 then
                        match exec subject f0 ~warp_size:ws with
                        | exception e ->
                            fail "base" "crash"
                              (Printf.sprintf "warp=%d: %s" ws
                                 (Printexc.to_string e))
                        | _, out -> (
                            match
                              mismatch_detail ~warp_size:ws base_out out
                            with
                            | Some d -> fail "base" "schedule" d
                            | None -> ()))
                    warps;
                  (match metrics_invariants base_m with
                  | Some d -> fail "base" "metrics" d
                  | None -> ());
                  (* cross-model differential: independent thread
                     scheduling must reproduce the stack model's final
                     memory image at every warp size *)
                  List.iter
                    (fun ws ->
                      match
                        exec ~reconvergence:its_model subject f0
                          ~warp_size:ws
                      with
                      | exception e ->
                          fail "base" "crash"
                            (Printf.sprintf "its warp=%d: %s" ws
                               (Printexc.to_string e))
                      | m, out ->
                          (if ws = 64 then
                             match metrics_invariants m with
                             | Some d -> fail "base" "metrics" ("its: " ^ d)
                             | None -> ());
                          (match
                             mismatch_detail ~warp_size:ws base_out out
                           with
                          | Some d -> fail "base" "xmodel" d
                          | None -> ()))
                    warps;
                  List.iter
                    (fun st ->
                      let ft = subject.sb_fresh () in
                      match st.st_apply ft with
                      | exception Pass.Validation_failed msg ->
                          fail st.st_name "tv" msg
                      | exception e ->
                          fail st.st_name "crash" (Printexc.to_string e)
                      | stats_opt -> (
                          match Verify.run ft with
                          | _ :: _ as errs ->
                              fail st.st_name "verifier"
                                (String.concat "; "
                                   (List.map
                                      (fun (e : Verify.error) ->
                                        e.Verify.msg)
                                      errs))
                          | [] -> (
                              (match
                                 Checker.new_errors ~before:base_report
                                   ~after:(Checker.check_func ft)
                               with
                              | [] -> ()
                              | d :: _ ->
                                  fail st.st_name
                                    ("checker-regression:" ^ d.Diag.id)
                                    (Diag.to_string d));
                              let opt_m = ref None in
                              List.iter
                                (fun ws ->
                                  match exec subject ft ~warp_size:ws with
                                  | exception e ->
                                      fail st.st_name "crash"
                                        (Printf.sprintf "warp=%d: %s" ws
                                           (Printexc.to_string e))
                                  | m, out ->
                                      if ws = 64 then opt_m := Some m;
                                      (match
                                         mismatch_detail ~warp_size:ws
                                           base_out out
                                       with
                                      | Some d ->
                                          fail st.st_name "mismatch" d
                                      | None -> ()))
                                warps;
                              (* the transformed kernel must also agree
                                 with the stack-model baseline image
                                 when run under independent thread
                                 scheduling *)
                              List.iter
                                (fun ws ->
                                  match
                                    exec ~reconvergence:its_model subject ft
                                      ~warp_size:ws
                                  with
                                  | exception e ->
                                      fail st.st_name "crash"
                                        (Printf.sprintf "its warp=%d: %s" ws
                                           (Printexc.to_string e))
                                  | _, out -> (
                                      match
                                        mismatch_detail ~warp_size:ws
                                          base_out out
                                      with
                                      | Some d ->
                                          fail st.st_name "xmodel" d
                                      | None -> ()))
                                warps;
                              match (stats_opt, !opt_m) with
                              | Some stats, Some opt ->
                                  (match
                                     report_invariants subject
                                       ~stage:st.st_name ~stats ~base:base_m
                                       ~opt
                                   with
                                  | Some d -> fail st.st_name "metrics" d
                                  | None -> ())
                              | _ -> ())))
                    stages;
                  done_ ())))

(* ------------------------------------------------------------------ *)
(* Seed-range driver                                                   *)

type summary = {
  sm_failures : failure list;
  sm_seeds_run : int;
  sm_seeds_total : int;
  sm_budget_exhausted : bool;
}

let run_seeds ?jobs ?(stages = default_stages) ?(cfg = Gen.default_cfg)
    ?inject ?budget_s ~block_size ~seeds () : summary =
  let deadline =
    Option.map (fun b -> Unix.gettimeofday () +. b) budget_s
  in
  let chunk_size =
    max 4 (match jobs with Some j -> j | None -> 4)
  in
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take k = function
          | [] -> ([], [])
          | x :: tl when k > 0 ->
              let a, b = take (k - 1) tl in
              (x :: a, b)
          | l -> ([], l)
        in
        let c, rest = take chunk_size l in
        c :: chunks rest
  in
  let total = List.length seeds in
  let failures = ref [] and run = ref 0 and cut = ref false in
  List.iter
    (fun chunk ->
      let past_deadline =
        match deadline with
        | Some d -> Unix.gettimeofday () > d
        | None -> false
      in
      if past_deadline then cut := true
      else begin
        let outcomes =
          Darm_harness.Parallel_sweep.map ?jobs
            (fun seed ->
              run_subject ~stages
                (subject_of_seed ~cfg ?inject ~block_size ~seed ()))
            chunk
        in
        List.iter
          (fun fs -> failures := List.rev_append fs !failures)
          outcomes;
        run := !run + List.length chunk
      end)
    (chunks seeds);
  {
    sm_failures = List.rev !failures;
    sm_seeds_run = !run;
    sm_seeds_total = total;
    sm_budget_exhausted = !cut;
  }
