(** Feature-flagged structured kernel generator — the adversarial input
    source of the conformance subsystem.

    Extends {!Darm_kernels.Random_kernel}'s loop-free diamonds with the
    hazard classes the checkers and the melding pass actually have to
    survive: bounded loops with uniform and thread-dependent (divergent)
    trip counts, correctly-guarded [syncthreads] phases, shared-memory
    tiles with affine tid addressing, nested and sequential diamonds,
    and switch-like comparison ladders.  Each feature sits behind a
    {!features} flag so a checker suite can target exactly its own
    hazard class.

    Race-freedom discipline (what makes the differential oracle sound):
    divergent code only {e reads} shared memory and only writes the
    thread's own cell of the output array; every shared-memory write is
    fenced between two block-uniform barriers and touches only the
    thread's own tile cell.  Provided [array_size >= block_size], a
    generated kernel is race-free by construction and its output is
    schedule-independent — the property {!Oracle} exploits by diffing
    runs across warp sizes.

    Generation is deterministic: the same [seed] and [cfg] produce a
    byte-identical printed kernel (the test suite pins this down). *)

open Darm_ir

type features = {
  loops_uniform : bool;     (** counted loops with constant trip counts *)
  loops_divergent : bool;   (** trip counts derived from the thread id *)
  barriers : bool;          (** uniform barrier-fenced shared write phases *)
  shared_tile : bool;       (** shared scratch tile, seeded then read *)
  nested_diamonds : bool;   (** diamonds forced directly inside diamonds *)
  switch_ladders : bool;    (** 4-way equality-comparison ladders *)
}

val all_features : features
val no_features : features

(** Parse a feature-set spec: ["all"], ["none"], or a comma-separated
    subset of [loops-uniform], [loops-divergent], [barriers],
    [shared-tile], [nested-diamonds], [switch-ladders]. *)
val features_of_string : string -> (features, string) result

val features_to_string : features -> string

type cfg = {
  max_depth : int;        (** nesting depth of if/loop constructs *)
  stmts_per_block : int;  (** statements per structured block (>= 1) *)
  array_size : int;       (** power of two; the oracle additionally
                              needs [array_size >= block_size] *)
  features : features;
}

val default_cfg : cfg

(** A small configuration for quick smoke fuzzing. *)
val smoke_cfg : cfg

(** Generate a kernel over parameters [(a, ptr global); (b, ptr global)];
    deterministic in [(seed, cfg)]. *)
val generate : ?cfg:cfg -> seed:int -> unit -> Ssa.func

(** Build a runnable instance around a generated kernel (inputs are
    seeded deterministically from [seed]; the [reference] accessor is
    empty — differential testing uses the untransformed run as the
    oracle). *)
val instance :
  ?cfg:cfg -> seed:int -> block_size:int -> unit -> Darm_kernels.Kernel.instance
