(** The regression corpus: shrunk repros as self-contained [.ll] files.

    Every file the fuzzer ever minted stays replayable forever.  A
    corpus entry is printed IR prefixed by a one-line provenance header:

    {v
    ; darm-corpus-v1 name=loop-mix seed=8 input_seed=8 block_size=64 n=128 expect=fail/darm-nounpred/mismatch
    ; note: found by gen v1, shrunk from 188 blocks
    kernel @loop_mix(%a: ptr(global), %b: ptr(global)) { ... }
    v}

    [expect=pass] entries must sail through the whole oracle matrix;
    [expect=fail/<stage>/<kind>] entries must fail with exactly that
    {!Oracle.failure_key} — so a fixed bug (the entry starts passing) or
    a changed failure mode both flip the replay red, prompting the
    header to be updated deliberately. *)

type expectation = Pass | Fail of { stage : string; kind : string }

type entry = {
  en_name : string;  (** file stem; no spaces *)
  en_seed : int;  (** generator seed provenance (informational) *)
  en_block_size : int;
  en_n : int;
  en_input_seed : int;
  en_expect : expectation;
  en_note : string option;
  en_text : string;  (** the kernel, printed IR *)
}

val expectation_to_string : expectation -> string
val expectation_of_string : string -> (expectation, string) result

val to_string : entry -> string
val of_string : string -> (entry, string) result

val load_file : string -> (entry, string) result

(** Write [<dir>/<name>.ll] (creating [dir] if needed); returns the
    path. *)
val save : dir:string -> entry -> string

(** All [*.ll] files in the directory, sorted by filename so replay
    order is stable. *)
val load_dir : string -> (string * (entry, string) result) list

(** Run the entry through the oracle matrix and check the verdict
    against its expectation.  [Ok] exactly when an [expect=pass] entry
    produces no failures, or an [expect=fail] entry produces at least
    one failure whose {!Oracle.failure_key} matches. *)
val replay : ?stages:Oracle.stage list -> entry -> (unit, string) result
