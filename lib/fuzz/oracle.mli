(** Lockstep differential oracle: the conformance subsystem's judge.

    A {!subject} (a generated, mutated, or corpus kernel over two global
    arrays) is put through the full matrix:

    - {b verifier} — the IR must be well-formed;
    - {b checkers} — {!Darm_checks.Checker} must report no error
      diagnostics on the untransformed kernel (kernels that fail here
      are reported and never executed — they are the mutation-kill
      targets);
    - {b schedule independence} — the untransformed kernel runs at warp
      sizes 64, 16 and 4 and the final memory images must agree
      (race-free kernels are schedule-independent; the warp size is the
      schedule knob);
    - {b every pipeline stage} — cleanups, tail merging, branch fusion,
      and DARM with and without unpredication (melding stages run under
      [Vfail] translation validation): each transformed kernel must
      verify, mint no new checker errors, and reproduce the baseline
      memory image at every warp size;
    - {b cross-model differential} — the untransformed kernel and every
      transformed kernel are re-executed under independent thread
      scheduling ({!Darm_sim.Simulator.Its}) at every warp size, and
      the final memory image must match the stack-model baseline
      (reconvergence strategy is a schedule knob, so race-free kernels
      must be insensitive to it);
    - {b metrics invariants} — for melding stages, the per-branch
      divergence attribution must stay consistent: branch splits sum to
      the aggregate divergence counter in both runs, all counters are
      non-negative, and the per-meld cycles-saved rows of
      {!Darm_harness.Report} plus the residual equal the total cycle
      delta exactly.

    Everything is deterministic: the same subject yields the same
    failure list, whatever the parallelism, so [darm_opt fuzz] reports
    byte-identical failure sets at any [--jobs] count. *)

open Darm_ir

(** {2 Subjects} *)

type subject = {
  sb_name : string;
  sb_fresh : unit -> Ssa.func;
      (** a {e fresh} copy per call — transformations mutate in place *)
  sb_block_size : int;
  sb_n : int;  (** element count of each of the two arrays *)
  sb_input_seed : int;  (** seed of the deterministic array contents *)
}

(** A generated kernel (optionally with an injected bug).  Raises
    [Invalid_argument] when [cfg.array_size < block_size]: threads of
    one block would then share output cells, the kernel would race
    against itself, and the schedule oracle would report phantom
    failures. *)
val subject_of_seed :
  ?cfg:Gen.cfg -> ?inject:Mutate.bug -> block_size:int -> seed:int -> unit ->
  subject

(** A kernel stored as printed IR (corpus entries, shrink candidates).
    The text must hold exactly one kernel taking two global pointer
    parameters; parse errors surface as [crash] failures. *)
val subject_of_text :
  name:string ->
  block_size:int ->
  n:int ->
  input_seed:int ->
  string ->
  subject

(** {2 Pipeline stages} *)

type stage = {
  st_name : string;
  st_apply : Ssa.func -> Darm_core.Pass.stats option;
      (** returns the pass statistics for melding stages (their meld
          provenance feeds the metrics invariants) *)
}

(** cleanups, tail-merge, branch-fusion, darm, darm-nounpred — melding
    stages under [Vfail] translation validation. *)
val default_stages : stage list

val warp_sizes : int list
(** [64; 16; 4] *)

(** {2 Failures} *)

type failure = {
  fl_subject : string;
  fl_stage : string;  (** ["base"] or a stage name *)
  fl_kind : string;
      (** [verifier], [checker:<id>], [checker-regression:<id>], [tv],
          [schedule], [mismatch], [xmodel] (stack-vs-its cross-model
          memory divergence), [metrics], [crash] *)
  fl_detail : string;
}

(** [stage/kind] — the shrinker's failure signature. *)
val failure_key : failure -> string

(** One deterministic line: [FAIL subject=.. stage=.. kind=.. :: detail]. *)
val failure_to_string : failure -> string

(** {2 Running} *)

(** Run one subject through the matrix; [[]] means fully conformant.
    [warps] (default {!warp_sizes}) narrows the schedule sweep — the
    shrinker passes [[64]] so each candidate costs two simulations
    instead of six. *)
val run_subject :
  ?stages:stage list -> ?warps:int list -> subject -> failure list

type summary = {
  sm_failures : failure list;  (** in seed order *)
  sm_seeds_run : int;
  sm_seeds_total : int;
  sm_budget_exhausted : bool;
}

(** Fan a seed range over the domain pool ({!Darm_harness.Parallel_sweep});
    failures come back in seed order for any [jobs].  [budget_s] bounds
    wall-clock time: the seed list is processed in deterministic chunks
    and no new chunk starts past the deadline (so a generous budget
    never changes the outcome, and [sm_budget_exhausted] says when the
    range was cut short). *)
val run_seeds :
  ?jobs:int ->
  ?stages:stage list ->
  ?cfg:Gen.cfg ->
  ?inject:Mutate.bug ->
  ?budget_s:float ->
  block_size:int ->
  seeds:int list ->
  unit ->
  summary
