(** Deterministic delta-debugging minimizer over printed IR text. *)

open Darm_ir
module T = Darm_transforms

type result = { sh_text : string; sh_steps : int; sh_blocks : int }

let zero_of_ty = function
  | Types.I32 -> Some (Ssa.Int 0)
  | Types.I1 -> Some (Ssa.Bool false)
  | Types.F32 -> Some (Ssa.Float 0.0)
  | _ -> None

(* The candidate edits for one parsed function, as thunks returning
   [true] when they changed it.  Enumerated in a fixed order — blocks in
   [blocks_list] order, instructions in body order — so the whole search
   is deterministic.  Coarse edits (collapsing a conditional branch
   deletes the unreachable arm's subtree) come first: most of a random
   kernel is irrelevant to any one failure, so the big cuts land early
   and the fine-grained classes run on an already small kernel. *)
let edits (f : Ssa.func) : (unit -> bool) list =
  let collapse b keep_idx () =
    let t = Ssa.terminator b in
    if t.Ssa.op <> Op.Condbr then false
    else
      let keep = t.Ssa.blocks.(keep_idx) in
      let drop = t.Ssa.blocks.(1 - keep_idx) in
      if keep == drop then false
      else begin
        Ssa.phi_remove_incoming drop ~pred:b;
        t.Ssa.op <- Op.Br;
        t.Ssa.operands <- [||];
        t.Ssa.blocks <- [| keep |];
        true
      end
  in
  let drop_effect b i () =
    match i.Ssa.parent with
    | Some p when p == b ->
        Ssa.remove_instr b i;
        true
    | _ -> false
  in
  let zero_result i () =
    match zero_of_ty i.Ssa.ty with
    | None -> false
    | Some z ->
        if Ssa.users f (Ssa.Instr i) = [] then false
        else begin
          Ssa.replace_all_uses f ~old_v:(Ssa.Instr i) ~new_v:z;
          true
        end
  in
  let zero_operand i j () =
    match i.Ssa.operands.(j) with
    | Ssa.Int k when k <> 0 ->
        i.Ssa.operands.(j) <- Ssa.Int 0;
        true
    | _ -> false
  in
  let branches = ref [] and effects = ref [] in
  let zeros = ref [] and consts = ref [] in
  List.iter
    (fun b ->
      (if Ssa.has_terminator b then
         let t = Ssa.terminator b in
         if t.Ssa.op = Op.Condbr then
           branches := collapse b 1 :: collapse b 0 :: !branches);
      List.iter
        (fun i ->
          if Op.has_side_effect i.Ssa.op then
            effects := drop_effect b i :: !effects
          else zeros := zero_result i :: !zeros;
          Array.iteri
            (fun j _ -> consts := zero_operand i j :: !consts)
            i.Ssa.operands)
        (Ssa.body b))
    f.Ssa.blocks_list;
  List.concat [ List.rev !branches; List.rev !effects;
                List.rev !zeros; List.rev !consts ]

let cleanup (f : Ssa.func) =
  let fuel = ref 8 in
  let changed = ref true in
  while !changed && !fuel > 0 do
    decr fuel;
    let a = T.Simplify_cfg.run f in
    let b = T.Constfold.run f in
    let c = T.Dce.run f in
    changed := a || b || c
  done

type attempt = Accepted of string | Rejected | Exhausted

let attempt ~still_failing cur idx : attempt =
  match Parser.parse_func cur with
  | Error _ -> Exhausted
  | Ok f -> (
      let es = edits f in
      if idx >= List.length es then Exhausted
      else if not ((List.nth es idx) ()) then Rejected
      else
        match
          try
            cleanup f;
            if Verify.run f = [] then Some (Printer.func_to_string f)
            else None
          with _ -> None
        with
        | None -> Rejected
        | Some t when String.equal t cur -> Rejected
        | Some t -> if still_failing t then Accepted t else Rejected)

let minimize ?(max_steps = 1_000) ~still_failing text0 : result =
  if not (still_failing text0) then
    invalid_arg "Shrink.minimize: the input does not satisfy still_failing";
  let cur = ref text0 in
  let steps = ref 0 in
  let idx = ref 0 in
  let accepted_this_round = ref false in
  let running = ref true in
  while !running && !steps < max_steps do
    match attempt ~still_failing !cur !idx with
    | Accepted t ->
        (* stay at the same index: the edit list just shrank, so the
           slot now holds a different (untried) edit *)
        cur := t;
        incr steps;
        accepted_this_round := true
    | Rejected -> incr idx
    | Exhausted ->
        if !accepted_this_round then begin
          idx := 0;
          accepted_this_round := false
        end
        else running := false
  done;
  let blocks =
    match Parser.parse_func !cur with
    | Ok f -> List.length f.Ssa.blocks_list
    | Error _ -> 0
  in
  { sh_text = !cur; sh_steps = !steps; sh_blocks = blocks }
