(** Seeded-bug injection (IR-level surgery on the exit block). *)

open Darm_ir
open Darm_ir.Ssa

type bug = Xbar | Xrace | Xrw

let all = [ Xbar; Xrace; Xrw ]

let tag = function Xbar -> "XBAR" | Xrace -> "XRACE" | Xrw -> "XRW"

let of_tag s =
  match String.uppercase_ascii (String.trim s) with
  | "XBAR" -> Some Xbar
  | "XRACE" -> Some Xrace
  | "XRW" -> Some Xrw
  | _ -> None

let expected_id = function
  | Xbar -> Darm_checks.Barrier_check.id_barrier_divergence
  | Xrace -> Darm_checks.Race_check.id_race_ww
  | Xrw -> Darm_checks.Race_check.id_race_rw

let find_ret_block (f : func) : block option =
  List.find_opt
    (fun b -> has_terminator b && (terminator b).op = Op.Ret)
    f.blocks_list

(* The thread index, guaranteed to dominate every block: reuse an
   entry-block [thread.idx] or mint one at the top of the entry. *)
let entry_tid (f : func) : value =
  let entry = entry_block f in
  match List.find_opt (fun i -> i.op = Op.Thread_idx) (body entry) with
  | Some i -> Instr i
  | None ->
      let i = mk_instr Op.Thread_idx [||] [||] Types.I32 in
      insert_after_phis entry i;
      Instr i

let find_shared (f : func) : value option =
  let found = ref None in
  iter_instrs f (fun i ->
      match i.op with
      | Op.Alloc_shared _ when !found = None -> found := Some (Instr i)
      | _ -> ());
  !found

let inject (bug : bug) (f : func) : (unit, string) result =
  match find_ret_block f with
  | None -> Error "no ret exit block to mutate"
  | Some exit_b -> (
      let ret = terminator exit_b in
      let tid = entry_tid f in
      let bld = Builder.create f in
      match bug with
      | Xbar ->
          (* guard a fresh barrier by [tid < 16]: the canonical
             barrier-under-divergence deadlock *)
          remove_instr exit_b ret;
          let sb = Builder.add_block bld "xbar_sync" in
          let join = Builder.add_block bld "xbar_join" in
          Builder.position_at_end bld exit_b;
          let cond = Builder.ins_icmp bld Op.Islt tid (Builder.i32 16) in
          Builder.ins_condbr bld cond sb join;
          Builder.position_at_end bld sb;
          Builder.ins_syncthreads bld;
          Builder.ins_br bld join;
          Builder.position_at_end bld join;
          Builder.ins_ret bld;
          Ok ()
      | Xrace -> (
          match find_shared f with
          | None -> Error "no shared array to race on"
          | Some s ->
              (* thread t writes s[t] and s[t+1]: overlapping stores in
                 one barrier interval *)
              remove_instr exit_b ret;
              Builder.position_at_end bld exit_b;
              ignore
                (Builder.ins_store bld tid (Builder.ins_gep bld s tid));
              ignore
                (Builder.ins_store bld tid
                   (Builder.ins_gep bld s
                      (Builder.add bld tid (Builder.i32 1))));
              Builder.ins_ret bld;
              Ok ())
      | Xrw -> (
          match (find_shared f, f.params) with
          | None, _ -> Error "no shared array to race on"
          | Some _, ([] | [ _ ]) -> Error "need two pointer parameters"
          | Some s, _ :: pb :: _ ->
              (* thread t writes s[t] then reads s[t+1] — the
                 neighbour's slot — with no barrier in between; the
                 loaded value escapes to global memory so DCE cannot
                 hide the bug *)
              remove_instr exit_b ret;
              Builder.position_at_end bld exit_b;
              ignore
                (Builder.ins_store bld tid (Builder.ins_gep bld s tid));
              let v =
                Builder.ins_load bld
                  (Builder.ins_gep bld s
                     (Builder.add bld tid (Builder.i32 1)))
              in
              ignore
                (Builder.ins_store bld v
                   (Builder.ins_gep bld (Param pb) tid));
              Builder.ins_ret bld;
              Ok ()))
