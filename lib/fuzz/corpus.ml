(** Corpus entries: provenance header + printed IR, one file per repro. *)

type expectation = Pass | Fail of { stage : string; kind : string }

type entry = {
  en_name : string;
  en_seed : int;
  en_block_size : int;
  en_n : int;
  en_input_seed : int;
  en_expect : expectation;
  en_note : string option;
  en_text : string;
}

let magic = "darm-corpus-v1"

let expectation_to_string = function
  | Pass -> "pass"
  | Fail { stage; kind } -> Printf.sprintf "fail/%s/%s" stage kind

let expectation_of_string s =
  match String.split_on_char '/' s with
  | [ "pass" ] -> Ok Pass
  | "fail" :: stage :: (_ :: _ as rest) ->
      Ok (Fail { stage; kind = String.concat "/" rest })
  | _ -> Error (Printf.sprintf "bad expectation %S" s)

let to_string (e : entry) : string =
  let buf = Buffer.create (String.length e.en_text + 256) in
  Buffer.add_string buf
    (Printf.sprintf
       "; %s name=%s seed=%d input_seed=%d block_size=%d n=%d expect=%s\n"
       magic e.en_name e.en_seed e.en_input_seed e.en_block_size e.en_n
       (expectation_to_string e.en_expect));
  (match e.en_note with
  | Some note -> Buffer.add_string buf (Printf.sprintf "; note: %s\n" note)
  | None -> ());
  Buffer.add_string buf e.en_text;
  if e.en_text = "" || e.en_text.[String.length e.en_text - 1] <> '\n' then
    Buffer.add_char buf '\n';
  Buffer.contents buf

let parse_header (line : string) : ((string * string) list, string) result =
  let line = String.trim line in
  if not (String.length line > 1 && line.[0] = ';') then
    Error "corpus file must start with a '; darm-corpus-v1 ...' header"
  else
    let fields =
      String.sub line 1 (String.length line - 1)
      |> String.trim |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")
    in
    match fields with
    | m :: rest when m = magic ->
        let kvs =
          List.filter_map
            (fun field ->
              match String.index_opt field '=' with
              | None -> None
              | Some i ->
                  Some
                    ( String.sub field 0 i,
                      String.sub field (i + 1)
                        (String.length field - i - 1) ))
            rest
        in
        Ok kvs
    | m :: _ -> Error (Printf.sprintf "unknown corpus magic %S" m)
    | [] -> Error "empty corpus header"

let of_string (s : string) : (entry, string) result =
  match String.index_opt s '\n' with
  | None -> Error "corpus file has no body"
  | Some nl -> (
      let header = String.sub s 0 nl in
      let rest = String.sub s (nl + 1) (String.length s - nl - 1) in
      match parse_header header with
      | Error e -> Error e
      | Ok kvs -> (
          let find k = List.assoc_opt k kvs in
          let int_field k =
            match find k with
            | None -> Error (Printf.sprintf "missing field %s" k)
            | Some v -> (
                match int_of_string_opt v with
                | Some i -> Ok i
                | None -> Error (Printf.sprintf "bad integer %s=%S" k v))
          in
          let ( let* ) = Result.bind in
          let* name =
            match find "name" with
            | Some n when n <> "" -> Ok n
            | _ -> Error "missing field name"
          in
          let* seed = int_field "seed" in
          let* input_seed = int_field "input_seed" in
          let* block_size = int_field "block_size" in
          let* n = int_field "n" in
          let* expect =
            match find "expect" with
            | None -> Error "missing field expect"
            | Some v -> expectation_of_string v
          in
          (* optional "; note: ..." lines before the kernel *)
          let note = ref None in
          let lines = String.split_on_char '\n' rest in
          let rec strip = function
            | l :: tl when String.trim l = "" -> strip tl
            | l :: tl
              when String.length (String.trim l) >= 7
                   && String.sub (String.trim l) 0 7 = "; note:" ->
                let t = String.trim l in
                note := Some (String.trim (String.sub t 7 (String.length t - 7)));
                strip tl
            | ls -> ls
          in
          let text = String.concat "\n" (strip lines) in
          if String.trim text = "" then Error "corpus file has no kernel body"
          else
            Ok
              {
                en_name = name;
                en_seed = seed;
                en_block_size = block_size;
                en_n = n;
                en_input_seed = input_seed;
                en_expect = expect;
                en_note = !note;
                en_text = text;
              }))

let load_file (path : string) : (entry, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> (
      match of_string s with
      | Ok e -> Ok e
      | Error e -> Error (Printf.sprintf "%s: %s" path e))

let save ~dir (e : entry) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (e.en_name ^ ".ll") in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string e));
  path

let load_dir (dir : string) : (string * (entry, string) result) list =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ll")
    |> List.sort String.compare
  in
  List.map (fun f -> (f, load_file (Filename.concat dir f))) files

let replay ?stages (e : entry) : (unit, string) result =
  let subject =
    Oracle.subject_of_text ~name:e.en_name ~block_size:e.en_block_size
      ~n:e.en_n ~input_seed:e.en_input_seed e.en_text
  in
  let failures = Oracle.run_subject ?stages subject in
  match (e.en_expect, failures) with
  | Pass, [] -> Ok ()
  | Pass, fl :: _ ->
      Error
        (Printf.sprintf "expected pass but: %s" (Oracle.failure_to_string fl))
  | Fail { stage; kind }, [] ->
      Error
        (Printf.sprintf "expected failure %s/%s but the kernel passed" stage
           kind)
  | Fail { stage; kind }, fls ->
      let want = stage ^ "/" ^ kind in
      if List.exists (fun fl -> Oracle.failure_key fl = want) fls then Ok ()
      else
        Error
          (Printf.sprintf "expected failure %s but saw: %s" want
             (String.concat "; " (List.map Oracle.failure_key fls)))
