(** Fleet-scale batch driver: stream a JSONL manifest of kernel specs
    through the melding pipeline and the simulator, backed by the
    content-addressed {!Darm_harness.Result_cache}.

    This is the ROADMAP's "compile-and-simulate at fleet scale" axis:
    [darm_opt batch] turns the one-kernel CLI into a throughput engine
    that melds, checks and simulates tens of thousands of kernels —
    registry benchmarks and/or {!Gen}-generated fuzz subjects — within
    a fixed wall-clock budget, with bounded in-flight memory and
    deterministic output.

    {b Determinism.}  The manifest is processed in fixed-size chunks
    ({!chunk_size}, independent of the pool size) over the
    {!Darm_harness.Parallel_sweep} domain pool; each chunk's results
    are appended to the output file in manifest order before the next
    chunk starts, so at most one chunk of payloads is in memory at a
    time, a crashed or budget-cut run leaves a valid JSONL prefix, and
    the emitted order is the manifest order at any [--jobs] count.
    Result payloads carry one wall-clock field ([pass_ms]); every other
    byte is deterministic, and a run that hits the cache replays the
    stored bytes verbatim — so a warm run's output is byte-identical to
    the cold run that populated the cache, whatever either run's job
    count.

    {b Budget.}  As in {!Oracle.run_seeds}, the deadline is only
    checked between chunks: no new chunk starts past it, so a generous
    budget never changes the outcome and a tight one cuts the manifest
    at a deterministic chunk boundary. *)

(** {2 Manifest} *)

(** ["darm-manifest-v1"] — one spec object per line (doc/fleet.md). *)
val manifest_schema : string

(** ["darm-batchres-v1"] — the result payload schema; also the cache's
    validation schema ({!Darm_harness.Result_cache.default_schema}). *)
val payload_schema : string

type spec =
  | Registry of {
      rs_tag : string;  (** registry kernel tag, e.g. ["BIT"] *)
      rs_block_size : int option;  (** default: the kernel's first *)
      rs_n : int option;  (** default: the kernel's [default_n] *)
      rs_seed : int;  (** input seed (default 2022) *)
    }
  | Fuzz of {
      fz_seed : int;  (** generator seed *)
      fz_block_size : int;
      fz_smoke : bool;  (** {!Gen.smoke_cfg} vs {!Gen.default_cfg} *)
      fz_features : string;  (** {!Gen.features_of_string} spec *)
      fz_inject : string option;
          (** {!Mutate} bug tag (XBAR/XRACE/XRW) grafted onto the
              generated kernel before anything runs — the checker then
              rejects it ([check-failed]), which is the point: an
              injected manifest is a known-bad workload for exercising
              failure paths ([--fail-on-error], CI).  Serialized as the
              optional [inject] field of [darm-manifest-v1]. *)
    }

(** Stable display name: the kernel tag, or [fuzz_<seed>]. *)
val spec_name : spec -> string

val spec_to_json : spec -> Darm_obs.Json.t

(** Parse one manifest line's object; validates the feature spec and
    the block-size/array-size precondition of fuzz subjects. *)
val spec_of_json : Darm_obs.Json.t -> (spec, string) result

(** All specs of a JSONL manifest, in file order.  Blank lines are
    skipped; a parse error carries [path:line:] with the 1-based line
    number. *)
val read_manifest : string -> (spec list, string) result

(** Write a fuzz manifest of [count] consecutive seeds (atomic,
    binary).  Defaults: [seed_start 0], [block_size 64], [smoke true],
    [features "all"], no [inject]. *)
val write_fuzz_manifest :
  path:string ->
  count:int ->
  ?seed_start:int ->
  ?block_size:int ->
  ?smoke:bool ->
  ?features:string ->
  ?inject:string ->
  unit ->
  unit

(** {2 Running} *)

(** Specs per deterministic chunk (64): the bound on in-flight results
    and the granularity of both output flushing and the budget check. *)
val chunk_size : int

type summary = {
  bt_total : int;  (** manifest entries *)
  bt_run : int;  (** entries processed (= total unless budget-cut) *)
  bt_hits : int;  (** served from the result cache *)
  bt_misses : int;  (** computed (and stored, when a cache is open) *)
  bt_incorrect : int;  (** melded output mismatched the baseline *)
  bt_check_failed : int;  (** checker-rejected, never simulated *)
  bt_errors : int;  (** crashed or invalid specs (never cached) *)
  bt_wall_s : float;
  bt_budget_exhausted : bool;
  bt_pass_ms_p99 : float option;
      (** exact (nearest-rank) p99 of [pass_ms] over the run's computed
          [ok] specs; [None] when nothing was computed (fully warm run,
          or only errors).  Flows into the history record's
          [pass_ms_p99] so [bench-diff] gates tail latency. *)
  bt_stalled : int;
      (** watchdog stall incidents over the run (0 without telemetry —
          the watchdog only runs when [events] or [snapshot] is on) *)
}

val hit_rate : summary -> float
val kernels_per_sec : summary -> float

(** The history-record form ({!Darm_harness.History.of_batch}). *)
val to_batch_stats : summary -> Darm_harness.History.batch

(** [run ~out specs] streams [specs] through the pipeline and appends
    one [darm-batchres-v1] JSON line per processed spec to [out]
    (truncated at start, appended chunk-by-chunk, binary).  [cache]
    (optional) serves hits and absorbs misses; corrupt or truncated
    cache entries are recomputed, never fatal.  [budget_s] bounds
    wall-clock as described above.

    {b Telemetry} (all optional, all off by default — a plain call
    behaves exactly as before):

    - [registry]: a live {!Darm_obs.Metrics_registry} the run accounts
      into as it goes — counters per processed spec, latency histograms
      ([darm_batch_pass_ms] / [darm_batch_sim_ms] /
      [darm_batch_cache_lookup_ms], computed specs only for the first
      two), progress/health gauges and the [darm_cache_*] /
      [darm_worker_*] families.  After [run] returns the registry holds
      the final state, so callers export it directly instead of
      {!fill_metrics} (calling both double-counts).
    - [events]: path of a [darm-events-v1] stream
      ({!Darm_obs.Events}) journaling the run/chunk/spec lifecycle.
      Core events are emitted by the coordinator in manifest order, so
      the canonicalized stream is byte-identical at any [jobs] given
      the same starting cache state.
    - [snapshot]: base path for periodic atomic
      {!Darm_obs.Snapshot} files ([<base>.prom] / [<base>.json]),
      rewritten every [cadence_s] (default 1.0s, clamped to >= 0.05s)
      by a monitor domain — the first write happens immediately, so
      even a fast run leaves at least one mid-run snapshot.
    - [stall_deadline_s] (default 30.): a busy worker with no completed
      spec for this long is flagged [stalled] (an event + a degraded
      [darm_run_health] gauge), recovering on its next completion.
      Size it generously above the slowest expected spec: one enormous
      spec is indistinguishable from a hang until it completes.

    The monitor domain only exists when [events] or [snapshot] is
    given; [registry] alone adds no threads and no files. *)
val run :
  ?jobs:int ->
  ?budget_s:float ->
  ?cache:Darm_harness.Result_cache.t ->
  ?registry:Darm_obs.Metrics_registry.t ->
  ?events:string ->
  ?snapshot:string ->
  ?cadence_s:float ->
  ?stall_deadline_s:float ->
  out:string ->
  spec list ->
  summary

(** Export a finished run's throughput counters into a metrics
    registry ([darm_batch_*] families, plus the [darm_batch_pass_ms_p99]
    gauge when the summary carries one).  For registries that lived
    through the run via [run ?registry] this is redundant (and
    double-counts) — it serves callers that only have the summary. *)
val fill_metrics : Darm_obs.Metrics_registry.t -> summary -> unit

(** One deterministic summary line (the CLI's last stdout line):
    [batch: R/T kernel(s), H hit(s) / M miss(es), hit-rate P%, ...]. *)
val summary_to_string : summary -> string
