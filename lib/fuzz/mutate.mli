(** Seeded-bug injection for the mutation-kill tests.

    Each {!bug} mirrors one {!Darm_kernels.Badkernels} negative class;
    {!inject} grafts the same defect onto an arbitrary generated kernel
    (IR-level surgery on the exit block), so the oracle can prove it
    catches the hazard in adversarial surroundings, not just in the
    hand-written registry kernel. *)

open Darm_ir

type bug =
  | Xbar   (** [syncthreads] guarded by a divergent [tid < 16] branch *)
  | Xrace  (** shared write-write overlap: [s\[tid\]] and [s\[tid+1\]] *)
  | Xrw    (** shared read-write overlap: reads [s\[tid+1\]] against
               [s\[tid\]] writes in the same barrier interval *)

val all : bug list

(** The matching {!Darm_kernels.Badkernels} registry tag: XBAR, XRACE,
    XRW. *)
val tag : bug -> string

val of_tag : string -> bug option

(** The checker diagnostic id the injected bug must trigger
    ([barrier-divergence], [shared-race-ww], [shared-race-rw]). *)
val expected_id : bug -> string

(** Graft the bug onto [f] (in place).  [Error] when the kernel lacks
    the ingredients ([Xrace]/[Xrw] need a shared array; all need a
    [ret] exit block and two pointer parameters). *)
val inject : bug -> Ssa.func -> (unit, string) result
