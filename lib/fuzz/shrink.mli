(** Deterministic delta-debugging minimizer.

    Reduces a failing kernel (as printed IR text) to a small
    self-contained repro while preserving the failure, by iterating
    four reduction classes to a fixpoint:

    - {b collapse diamonds}: rewrite a conditional branch into an
      unconditional one (both arms tried), letting SimplifyCFG delete
      the unreachable side;
    - {b drop statements}: delete side-effecting instructions (stores,
      barriers);
    - {b zero values}: replace an instruction result with the zero of
      its type, letting DCE delete the computation tree behind it;
    - {b shrink constants}: replace non-zero integer constants with 0.

    After every candidate edit the function is cleaned up (SimplifyCFG,
    constant folding, DCE), re-verified, re-printed, and accepted only
    when [still_failing] holds on the new text — so the result always
    parses, verifies, and fails exactly like the original.  The search
    is greedy and fully deterministic: the same input and predicate
    always produce the same minimal repro. *)

type result = {
  sh_text : string;  (** the minimized kernel, printed *)
  sh_steps : int;    (** accepted reductions *)
  sh_blocks : int;   (** basic blocks in the minimized kernel *)
}

(** [minimize ~still_failing text] requires [still_failing text] to
    hold on entry ([Invalid_argument] otherwise — the predicate and the
    seed disagree) and returns a fixpoint of the reduction classes.
    [max_steps] caps the number of accepted reductions (default
    [1_000]). *)
val minimize :
  ?max_steps:int -> still_failing:(string -> bool) -> string -> result
