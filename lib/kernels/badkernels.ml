(** Deliberately broken kernels (negative tests for the checkers).
    See the interface for the catalogue. *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

(* Shared boilerplate: one global int array argument, identity
   reference (these kernels exist to be checked, not benchmarked). *)
let make_instance build ~seed ~block_size ~n =
  let n = max block_size (n - (n mod block_size)) in
  let input = Kernel.random_int_array ~seed ~n ~bound:1000 in
  let global = Memory.create ~space:Memory.Sp_global n in
  let pa = Memory.alloc_of_int_array global input in
  {
    Kernel.func = build ~block_size;
    global;
    args = [| pa |];
    launch =
      { Darm_sim.Simulator.grid_dim = n / block_size; block_dim = block_size };
    read_result = (fun () -> Memory.read_int_array global pa n |> Kernel.ints);
    reference = (fun () -> Kernel.ints input);
  }

let barrier_div : Kernel.t =
  let build ~block_size =
    D.build_kernel ~name:"bad_barrier_div"
      ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
        let s = D.shared_array ctx block_size in
        D.store ctx (D.load ctx (D.gep ctx a gid)) (D.gep ctx s tid);
        (* the bug: only the first 16 threads reach the barrier *)
        D.if_then ctx (D.slt ctx tid (D.i32 16)) (fun () -> D.sync ctx);
        D.store ctx (D.load ctx (D.gep ctx s tid)) (D.gep ctx a gid))
  in
  {
    Kernel.name = "barrier under divergence";
    tag = "XBAR";
    description = "syncthreads guarded by tid < 16 (negative test)";
    default_n = 256;
    block_sizes = [ 64 ];
    make = make_instance build;
  }

let shared_ww : Kernel.t =
  let build ~block_size =
    D.build_kernel ~name:"bad_shared_ww"
      ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
        let s = D.shared_array ctx (block_size + 1) in
        let v = D.load ctx (D.gep ctx a gid) in
        D.store ctx v (D.gep ctx s tid);
        (* the bug: thread t and thread t+1 both write element t+1,
           with no barrier between the two stores *)
        D.store ctx v (D.gep ctx s (D.add ctx tid (D.i32 1)));
        D.sync ctx;
        D.store ctx (D.load ctx (D.gep ctx s tid)) (D.gep ctx a gid))
  in
  {
    Kernel.name = "shared write-write race";
    tag = "XRACE";
    description = "overlapping s[tid] and s[tid+1] writes (negative test)";
    default_n = 256;
    block_sizes = [ 64 ];
    make = make_instance build;
  }

let shared_rw : Kernel.t =
  let build ~block_size =
    D.build_kernel ~name:"bad_shared_rw"
      ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
        let s = D.shared_array ctx (block_size + 1) in
        D.store ctx (D.load ctx (D.gep ctx a gid)) (D.gep ctx s tid);
        (* the bug: reads the neighbour's slot with no barrier after
           the writes *)
        let v = D.load ctx (D.gep ctx s (D.add ctx tid (D.i32 1))) in
        D.store ctx v (D.gep ctx a gid))
  in
  {
    Kernel.name = "shared read-write race";
    tag = "XRW";
    description = "s[tid+1] read against s[tid] writes (negative test)";
    default_n = 256;
    block_sizes = [ 64 ];
    make = make_instance build;
  }

let all : Kernel.t list = [ barrier_div; shared_ww; shared_rw ]
