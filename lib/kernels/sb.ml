(** Synthetic benchmarks SB1–SB3 and their -R variants (paper §VI-A,
    Fig. 6).

    Every kernel has two nested loops whose inner body contains a
    divergent if-then-else on the thread index; the kernel reads four
    arrays [a, b, p, q] into shared memory, computes, and writes back.
    The {e true} path only touches [a, b], the {e false} path only
    [p, q]:

    - SB1: both paths are single basic blocks (diamond);
    - SB2: both paths are if-then regions (complex control flow that
      branch fusion cannot handle);
    - SB3: both paths are {e two} consecutive if-then regions, giving
      the melder multiple subgraph pairs;
    - the -R variants keep the control-flow shape but use different
      instruction sequences on the two paths, so alignment is imperfect
      and selects/unpredication costs show up. *)

open Darm_ir
open Darm_ir.Ssa
module Memory = Darm_sim.Memory
module D = Dsl

let outer_iters = 4
let inner_iters = 4

(* the host mirrors model C [int] arithmetic: every stored value wraps
   to two's-complement i32, exactly like the device code on the
   simulator (wrapping once per store is congruent to the simulator's
   per-operation wrap for these add/mul/xor chains) *)
let i32 = Darm_ir.I32.to_i32

(** One "computation" on a pair of shared-memory locations, with its
    host-side mirror. *)
type comp = {
  emit : D.ctx -> x:value -> y:value -> i:value -> j:value -> unit;
  host : int array -> int array -> int -> int -> int -> unit;
}

(* x := x*y + x + (i + j) *)
let comp_mul_add : comp =
  {
    emit =
      (fun ctx ~x ~y ~i ~j ->
        let xv = D.load ctx x in
        let yv = D.load ctx y in
        let t = D.mul ctx xv yv in
        let t = D.add ctx t xv in
        let t = D.add ctx t (D.add ctx i j) in
        D.store ctx t x);
    host =
      (fun xa ya i j k ->
        xa.(k) <- i32 ((xa.(k) * ya.(k)) + xa.(k) + i + j));
  }

(* x := (x lxor y) + (x lsr 1) + 3*j  — a different opcode mix *)
let comp_xor_shift : comp =
  {
    emit =
      (fun ctx ~x ~y ~i:_ ~j ->
        let xv = D.load ctx x in
        let yv = D.load ctx y in
        let t = D.xor ctx xv yv in
        let s = D.lshr ctx xv (D.i32 1) in
        let t = D.add ctx t s in
        let t = D.add ctx t (D.mul ctx j (D.i32 3)) in
        D.store ctx t x);
    host =
      (fun xa ya _i j k ->
        xa.(k) <-
          i32
            ((xa.(k) lxor ya.(k))
            + ((xa.(k) land 0xFFFFFFFF) lsr 1)
            + (3 * j)));
  }

(* x := x + y*2 - i *)
let comp_addsub : comp =
  {
    emit =
      (fun ctx ~x ~y ~i ~j:_ ->
        let xv = D.load ctx x in
        let yv = D.load ctx y in
        let t = D.add ctx xv (D.mul ctx yv (D.i32 2)) in
        let t = D.sub ctx t i in
        D.store ctx t x);
    host = (fun xa ya i _j k -> xa.(k) <- i32 (xa.(k) + (ya.(k) * 2) - i));
  }

(* x := smax(x, y) + (y land 7) *)
let comp_max_mask : comp =
  {
    emit =
      (fun ctx ~x ~y ~i:_ ~j:_ ->
        let xv = D.load ctx x in
        let yv = D.load ctx y in
        let t = D.smax ctx xv yv in
        let t = D.add ctx t (D.and_ ctx yv (D.i32 7)) in
        D.store ctx t x);
    host =
      (fun xa ya _i _j k ->
        xa.(k) <- i32 (max xa.(k) ya.(k) + (ya.(k) land 7)));
  }

(** Pattern shape: what the divergent paths contain. *)
type pattern =
  | Diamond  (** SB1: one straight-line block per side *)
  | If_then  (** SB2: an if-then region per side *)
  | Two_if_then  (** SB3: two consecutive if-then regions per side *)

(* guard for the inner data-dependent branch: *x < *y *)
let emit_guarded (ctx : D.ctx) ~(x : value) ~(y : value) ~(i : value)
    ~(j : value) (c : comp) : unit =
  let xv = D.load ctx x in
  let yv = D.load ctx y in
  let cond = D.slt ctx xv yv in
  D.if_then ctx cond (fun () -> c.emit ctx ~x ~y ~i ~j)

let host_guarded (c : comp) (xa : int array) (ya : int array) (i : int)
    (j : int) (k : int) : unit =
  if xa.(k) < ya.(k) then c.host xa ya i j k

(* second guard for SB3's second region: *x > j*4 *)
let emit_guarded2 (ctx : D.ctx) ~(x : value) ~(y : value) ~(i : value)
    ~(j : value) (c : comp) : unit =
  let xv = D.load ctx x in
  let cond = D.sgt ctx xv (D.mul ctx j (D.i32 4)) in
  D.if_then ctx cond (fun () -> c.emit ctx ~x ~y ~i ~j)

let host_guarded2 (c : comp) (xa : int array) (ya : int array) (i : int)
    (j : int) (k : int) : unit =
  if xa.(k) > j * 4 then c.host xa ya i j k

(** Build one synthetic kernel. [t1]/[t2] are the true-path computations,
    [f1]/[f2] the false-path ones (identical for the non-R variants). *)
let build_kernel ~(name : string) ~(pattern : pattern) ~(t1 : comp)
    ~(t2 : comp) ~(f1 : comp) ~(f2 : comp) ~(block_size : int) : func =
  D.build_kernel ~name
    ~params:
      [
        ("a", Types.Ptr Types.Global);
        ("b", Types.Ptr Types.Global);
        ("p", Types.Ptr Types.Global);
        ("q", Types.Ptr Types.Global);
      ]
    (fun ctx params ->
      let a, b, p, q =
        match params with
        | [ a; b; p; q ] -> (a, b, p, q)
        | _ -> assert false
      in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let sa = D.shared_array ctx block_size in
      let sb = D.shared_array ctx block_size in
      let sp = D.shared_array ctx block_size in
      let sq = D.shared_array ctx block_size in
      let my sarr = D.gep ctx sarr tid in
      let sa_p = my sa and sb_p = my sb and sp_p = my sp and sq_p = my sq in
      D.store ctx (D.load ctx (D.gep ctx a gid)) sa_p;
      D.store ctx (D.load ctx (D.gep ctx b gid)) sb_p;
      D.store ctx (D.load ctx (D.gep ctx p gid)) sp_p;
      D.store ctx (D.load ctx (D.gep ctx q gid)) sq_p;
      D.sync ctx;
      D.for_up ctx ~name:"i" ~from:(D.i32 0) ~until:(D.i32 outer_iters)
        (fun iv ->
          D.for_up ctx ~name:"j" ~from:(D.i32 0) ~until:(D.i32 inner_iters)
            (fun jv ->
              let parity =
                D.and_ ctx (D.add ctx tid (D.add ctx iv jv)) (D.i32 1)
              in
              let cond = D.eq ctx parity (D.i32 0) in
              let true_path () =
                match pattern with
                | Diamond -> t1.emit ctx ~x:sa_p ~y:sb_p ~i:iv ~j:jv
                | If_then ->
                    emit_guarded ctx ~x:sa_p ~y:sb_p ~i:iv ~j:jv t1
                | Two_if_then ->
                    emit_guarded ctx ~x:sa_p ~y:sb_p ~i:iv ~j:jv t1;
                    emit_guarded2 ctx ~x:sa_p ~y:sb_p ~i:iv ~j:jv t2
              in
              let false_path () =
                match pattern with
                | Diamond -> f1.emit ctx ~x:sp_p ~y:sq_p ~i:iv ~j:jv
                | If_then ->
                    emit_guarded ctx ~x:sp_p ~y:sq_p ~i:iv ~j:jv f1
                | Two_if_then ->
                    emit_guarded ctx ~x:sp_p ~y:sq_p ~i:iv ~j:jv f1;
                    emit_guarded2 ctx ~x:sp_p ~y:sq_p ~i:iv ~j:jv f2
              in
              D.if_ ctx cond true_path false_path));
      D.sync ctx;
      D.store ctx (D.load ctx sa_p) (D.gep ctx a gid);
      D.store ctx (D.load ctx sp_p) (D.gep ctx p gid))

(** Host-side mirror of the kernel over the whole grid. *)
let host_run ~(pattern : pattern) ~(t1 : comp) ~(t2 : comp) ~(f1 : comp)
    ~(f2 : comp) (a : int array) (b : int array) (p : int array)
    (q : int array) : unit =
  let n = Array.length a in
  for gid = 0 to n - 1 do
    for i = 0 to outer_iters - 1 do
      for j = 0 to inner_iters - 1 do
        if (gid + i + j) land 1 = 0 then
          match pattern with
          | Diamond -> t1.host a b i j gid
          | If_then -> host_guarded t1 a b i j gid
          | Two_if_then ->
              host_guarded t1 a b i j gid;
              host_guarded2 t2 a b i j gid
        else
          match pattern with
          | Diamond -> f1.host p q i j gid
          | If_then -> host_guarded f1 p q i j gid
          | Two_if_then ->
              host_guarded f1 p q i j gid;
              host_guarded2 f2 p q i j gid
      done
    done
  done

let make_sb ~(tag : string) ~(pattern : pattern) ~(randomized : bool) :
    Kernel.t =
  let t1 = comp_mul_add and t2 = comp_addsub in
  let f1 = if randomized then comp_xor_shift else comp_mul_add in
  let f2 = if randomized then comp_max_mask else comp_addsub in
  let make ~seed ~block_size ~n =
    let n = n - (n mod block_size) in
    let n = max n block_size in
    let a = Kernel.random_int_array ~seed ~n ~bound:1024 in
    let b = Kernel.random_int_array ~seed:(seed + 1) ~n ~bound:1024 in
    let p = Kernel.random_int_array ~seed:(seed + 2) ~n ~bound:1024 in
    let q = Kernel.random_int_array ~seed:(seed + 3) ~n ~bound:1024 in
    let global = Memory.create ~space:Memory.Sp_global (4 * n) in
    let pa = Memory.alloc_of_int_array global a in
    let pb = Memory.alloc_of_int_array global b in
    let pp = Memory.alloc_of_int_array global p in
    let pq = Memory.alloc_of_int_array global q in
    let func =
      build_kernel ~name:(String.lowercase_ascii tag) ~pattern ~t1 ~t2 ~f1
        ~f2 ~block_size
    in
    {
      Kernel.func;
      global;
      args = [| pa; pb; pp; pq |];
      launch = { Darm_sim.Simulator.grid_dim = n / block_size; block_dim = block_size };
      read_result =
        (fun () ->
          Array.append
            (Memory.read_int_array global pa n |> Kernel.ints)
            (Memory.read_int_array global pp n |> Kernel.ints));
      reference =
        (fun () ->
          let a' = Array.copy a
          and b' = Array.copy b
          and p' = Array.copy p
          and q' = Array.copy q in
          host_run ~pattern ~t1 ~t2 ~f1 ~f2 a' b' p' q';
          Array.append (Kernel.ints a') (Kernel.ints p'));
    }
  in
  {
    Kernel.name = tag;
    tag;
    description =
      (match pattern, randomized with
      | Diamond, false -> "diamond divergence, identical paths"
      | Diamond, true -> "diamond divergence, distinct paths"
      | If_then, false -> "if-then regions on both paths, identical"
      | If_then, true -> "if-then regions on both paths, distinct"
      | Two_if_then, false -> "two if-then regions per path, identical"
      | Two_if_then, true -> "two if-then regions per path, distinct");
    default_n = 2048;
    block_sizes = [ 64; 128; 256; 512; 1024 ];
    make;
  }

let sb1 = make_sb ~tag:"SB1" ~pattern:Diamond ~randomized:false
let sb1_r = make_sb ~tag:"SB1-R" ~pattern:Diamond ~randomized:true
let sb2 = make_sb ~tag:"SB2" ~pattern:If_then ~randomized:false
let sb2_r = make_sb ~tag:"SB2-R" ~pattern:If_then ~randomized:true
let sb3 = make_sb ~tag:"SB3" ~pattern:Two_if_then ~randomized:false
let sb3_r = make_sb ~tag:"SB3-R" ~pattern:Two_if_then ~randomized:true

let all = [ sb1; sb2; sb3; sb1_r; sb2_r; sb3_r ]
