(** All evaluation kernels, keyed by their figure tags. *)

let synthetic : Kernel.t list = Sb.all

let real_world : Kernel.t list =
  [ Lud.kernel; Bitonic.kernel; Dct.kernel; Mergesort.kernel; Pcm.kernel ]

(** Extension workloads beyond the paper's figure set. *)
let extras : Kernel.t list =
  [ Patterns.identical_diamond; Patterns.flat_meld; Fdct.kernel ]

let all : Kernel.t list = synthetic @ real_world @ extras

(** Deliberately broken kernels for the sanity-checker negative tests;
    deliberately {e not} part of {!all} so sweeps and fuzzers never
    execute them. *)
let negative : Kernel.t list = Badkernels.all

let find (tag : string) : Kernel.t option =
  let norm = String.uppercase_ascii tag in
  List.find_opt (fun k -> String.uppercase_ascii k.Kernel.tag = norm) all

(** Like {!find}, but also resolves the {!negative} kernels — used by
    [darm_opt check], which must be able to point the checkers at
    known-bad inputs. *)
let find_any (tag : string) : Kernel.t option =
  let norm = String.uppercase_ascii tag in
  List.find_opt
    (fun k -> String.uppercase_ascii k.Kernel.tag = norm)
    (all @ negative)

let tags () = List.map (fun k -> k.Kernel.tag) all
