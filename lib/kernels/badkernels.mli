(** Deliberately broken kernels for the sanity checkers' negative
    tests.  They are registered under {!Registry.negative} — reachable
    by tag through {!Registry.find_any} for [darm_opt check] and the CI
    script — but kept out of {!Registry.all} so the benchmark sweeps
    and differential fuzzers never execute them (the barrier one would
    hang a real GPU, and hangs the simulator's warp scheduler too).

    - [barrier_div] (tag [XBAR]): a [syncthreads] guarded by
      [tid < 16] — barrier divergence.
    - [shared_ww] (tag [XRACE]): every thread writes both [s\[tid\]]
      and [s\[tid+1\]] with no barrier between — write-write race.
    - [shared_rw] (tag [XRW]): writes [s\[tid\]] then reads
      [s\[tid+1\]] with no barrier between — read-write race. *)

val barrier_div : Kernel.t
val shared_ww : Kernel.t
val shared_rw : Kernel.t

val all : Kernel.t list
