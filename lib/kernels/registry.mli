(** All evaluation kernels, keyed by their figure tags. *)

val synthetic : Kernel.t list

val real_world : Kernel.t list

(** Extension workloads beyond the paper's figure set. *)
val extras : Kernel.t list

val all : Kernel.t list

(** Deliberately broken kernels ({!Badkernels}) for the sanity-checker
    negative tests; not part of {!all}, so sweeps and fuzzers never
    execute them. *)
val negative : Kernel.t list

(** Case-insensitive lookup by tag. *)
val find : string -> Kernel.t option

(** Like {!find} but also resolves {!negative} kernels. *)
val find_any : string -> Kernel.t option

val tags : unit -> string list
