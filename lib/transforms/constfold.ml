(** Constant folding of individual instructions. *)

open Darm_ir
open Darm_ir.Ssa

(* both the folder and the simulator evaluate integer arithmetic
   through Darm_ir.I32, so folding a computation can never change what
   the machine would have computed *)
let fold_ibin (op : Op.ibinop) (x : int) (y : int) : int option =
  I32.eval op x y

let fold_icmp (p : Op.icmp_pred) (x : int) (y : int) : bool =
  I32.compare_i32 p x y

(** Try to fold [i] to a constant value. *)
let fold_instr (i : instr) : value option =
  match i.op, Array.to_list i.operands with
  | Op.Ibin op, [ Int x; Int y ] ->
      Option.map (fun v -> Int v) (fold_ibin op x y)
  (* algebraic identities *)
  | Op.Ibin Op.Add, [ v; Int 0 ] | Op.Ibin Op.Add, [ Int 0; v ] -> Some v
  | Op.Ibin Op.Sub, [ v; Int 0 ] -> Some v
  | Op.Ibin Op.Mul, [ v; Int 1 ] | Op.Ibin Op.Mul, [ Int 1; v ] -> Some v
  | Op.Ibin Op.Mul, [ _; Int 0 ] | Op.Ibin Op.Mul, [ Int 0; _ ] -> Some (Int 0)
  | Op.Icmp p, [ Int x; Int y ] -> Some (Bool (fold_icmp p x y))
  | Op.Not, [ Bool b ] -> Some (Bool (not b))
  | Op.Select, [ Bool true; tv; _ ] -> Some tv
  | Op.Select, [ Bool false; _; fv ] -> Some fv
  | Op.Select, [ _; tv; fv ] when value_equal tv fv -> Some tv
  | _ -> None

(** Fold everything foldable in [f]; returns [true] if anything changed.
    Folded instructions become dead and are left for {!Dce}. *)
let run (f : func) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    iter_instrs f (fun i ->
        match fold_instr i with
        | Some v ->
            replace_all_uses f ~old_v:(Instr i) ~new_v:v;
            (match i.parent with Some b -> remove_instr b i | None -> ());
            progress := true;
            changed := true
        | None -> ())
  done;
  !changed
