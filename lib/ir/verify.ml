(** IR well-formedness and SSA verifier.

    Run after every transformation in tests; a passing verifier means the
    function can be printed, parsed back, simulated, and further
    transformed.  The dominance check uses a local iterative dominator
    computation so that the IR library stays self-contained. *)

open Ssa

type error = { msg : string }

let errf fmt = Printf.ksprintf (fun msg -> { msg }) fmt

(* Iterative dominator sets over reachable blocks; quadratic but only used
   for verification. *)
let dominators (f : func) : (int, (int, unit) Hashtbl.t) Hashtbl.t =
  let entry = entry_block f in
  let reachable = Hashtbl.create 32 in
  let rec dfs b =
    if not (Hashtbl.mem reachable b.bid) then begin
      Hashtbl.replace reachable b.bid b;
      List.iter dfs (successors b)
    end
  in
  dfs entry;
  let blocks = Hashtbl.fold (fun _ b acc -> b :: acc) reachable [] in
  let preds = predecessors f in
  let dom : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
  let all () =
    let t = Hashtbl.create 32 in
    List.iter (fun b -> Hashtbl.replace t b.bid ()) blocks;
    t
  in
  List.iter
    (fun b ->
      if b.bid = entry.bid then begin
        let t = Hashtbl.create 4 in
        Hashtbl.replace t b.bid ();
        Hashtbl.replace dom b.bid t
      end
      else Hashtbl.replace dom b.bid (all ()))
    blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b.bid <> entry.bid then begin
          let ps =
            List.filter
              (fun p -> Hashtbl.mem reachable p.bid)
              (preds_of preds b)
          in
          let inter = Hashtbl.create 32 in
          (match ps with
          | [] -> ()
          | p0 :: rest ->
              Hashtbl.iter
                (fun k () ->
                  if
                    List.for_all
                      (fun p -> Hashtbl.mem (Hashtbl.find dom p.bid) k)
                      rest
                  then Hashtbl.replace inter k ())
                (Hashtbl.find dom p0.bid));
          Hashtbl.replace inter b.bid ();
          let cur = Hashtbl.find dom b.bid in
          if Hashtbl.length cur <> Hashtbl.length inter then begin
            Hashtbl.replace dom b.bid inter;
            changed := true
          end
        end)
      blocks
  done;
  dom

(* Operand/result type rules per opcode.  Pointer positions accept any
   address space: melding legitimately mixes spaces through flat
   pointers. *)
let type_check_instr (err : error -> unit) (i : instr) : unit =
  let name = Op.to_string i.op in
  let ty k = value_ty i.operands.(k) in
  let expect k want =
    if Array.length i.operands > k && not (Types.equal (ty k) want) then
      err
        (errf "%s: operand %d has type %s, expected %s" name k
           (Types.to_string (ty k))
           (Types.to_string want))
  in
  let expect_ptr k =
    if Array.length i.operands > k && not (Types.is_pointer (ty k)) then
      err (errf "%s: operand %d is not a pointer" name k)
  in
  let expect_result want =
    if not (Types.equal i.ty want) then
      err
        (errf "%s: result type is %s, expected %s" name
           (Types.to_string i.ty) (Types.to_string want))
  in
  let expect_arity n =
    if Array.length i.operands <> n then
      err (errf "%s: expected %d operands, got %d" name n
             (Array.length i.operands))
  in
  let compatible a b =
    Types.equal a b || (Types.is_pointer a && Types.is_pointer b)
  in
  (* Address-space flow: a concrete-space (shared/global) pointer result
     may only be fed by pointers of the same space; widening into Flat
     is always allowed (that is what [Types.join_ptr] produces), and
     crossing back from Flat into a concrete space requires an explicit
     [addrspace.cast] — which itself always produces Flat, so narrowing
     is never implicit. *)
  let expect_no_narrowing what v =
    match i.ty, value_ty v with
    | Types.Ptr rs, Types.Ptr vs
      when (match rs with Types.Flat -> false | _ -> true)
           && not (Types.addrspace_equal rs vs) ->
        err
          (errf "%s: %s narrows a %s pointer into address space %s" name what
             (Types.addrspace_to_string vs)
             (Types.addrspace_to_string rs))
    | _ -> ()
  in
  match i.op with
  | Op.Ibin _ ->
      expect_arity 2;
      expect 0 Types.I32;
      expect 1 Types.I32;
      expect_result Types.I32
  | Op.Fbin _ ->
      expect_arity 2;
      expect 0 Types.F32;
      expect 1 Types.F32;
      expect_result Types.F32
  | Op.Icmp _ ->
      expect_arity 2;
      if Array.length i.operands = 2 && not (compatible (ty 0) (ty 1)) then
        err (errf "icmp: operand types differ");
      expect_result Types.I1
  | Op.Fcmp _ ->
      expect_arity 2;
      expect 0 Types.F32;
      expect 1 Types.F32;
      expect_result Types.I1
  | Op.Not ->
      expect_arity 1;
      expect 0 Types.I1;
      expect_result Types.I1
  | Op.Select ->
      expect_arity 3;
      expect 0 Types.I1;
      if Array.length i.operands = 3 then begin
        if not (compatible (ty 1) (ty 2) && compatible (ty 1) i.ty) then
          err (errf "select: arm/result types incompatible");
        expect_no_narrowing "true arm" i.operands.(1);
        expect_no_narrowing "false arm" i.operands.(2)
      end
  | Op.Load ->
      expect_arity 1;
      expect_ptr 0;
      if Types.equal i.ty Types.Void || Types.is_pointer i.ty then
        err (errf "load: result must be a scalar")
  | Op.Store ->
      expect_arity 2;
      expect_ptr 1;
      if
        Array.length i.operands = 2 && Types.equal (ty 0) Types.Void
      then err (errf "store: cannot store void")
  | Op.Gep ->
      expect_arity 2;
      expect_ptr 0;
      expect 1 Types.I32;
      if not (Types.is_pointer i.ty) then
        err (errf "gep: result must be a pointer")
      else if Array.length i.operands = 2 then (
        match ty 0 with
        | Types.Ptr base when not (Types.equal i.ty (Types.Ptr base)) ->
            err
              (errf "gep: result space %s differs from base space %s"
                 (Types.to_string i.ty)
                 (Types.addrspace_to_string base))
        | _ -> ())
  | Op.Condbr ->
      expect_arity 1;
      expect 0 Types.I1
  | Op.Br | Op.Ret | Op.Syncthreads -> expect_arity 0
  | Op.Thread_idx | Op.Block_idx | Op.Block_dim | Op.Grid_dim ->
      expect_arity 0;
      expect_result Types.I32
  | Op.Alloc_shared n ->
      expect_arity 0;
      if n <= 0 then err (errf "alloc.shared: non-positive size");
      expect_result (Types.Ptr Types.Shared)
  | Op.Sitofp ->
      expect_arity 1;
      expect 0 Types.I32;
      expect_result Types.F32
  | Op.Fptosi ->
      expect_arity 1;
      expect 0 Types.F32;
      expect_result Types.I32
  | Op.Addrspace_cast ->
      expect_arity 1;
      expect_ptr 0;
      expect_result (Types.Ptr Types.Flat)
  | Op.Phi ->
      Array.iter
        (fun v ->
          if not (compatible (value_ty v) i.ty) then
            err (errf "phi: incoming type %s incompatible with %s"
                   (Types.to_string (value_ty v))
                   (Types.to_string i.ty));
          expect_no_narrowing "incoming" v)
        i.operands

(** [run f] returns the list of well-formedness violations in [f];
    an empty list means the function verifies. *)
let run (f : func) : error list =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  (match f.blocks_list with
  | [] -> err (errf "function %s has no blocks" f.fname)
  | _ -> ());
  if f.blocks_list = [] then List.rev !errors
  else begin
    let preds = predecessors f in
    (* Structural checks *)
    List.iter
      (fun b ->
        (match b.bparent with
        | Some g when g == f -> ()
        | _ -> err (errf "block %s has wrong parent" b.bname));
        (match b.instrs with
        | [] -> err (errf "block %s is empty" b.bname)
        | instrs ->
            let rec check_order seen_non_phi = function
              | [] -> ()
              | i :: tl ->
                  (match i.parent with
                  | Some bb when bb == b -> ()
                  | _ ->
                      err (errf "instr %d in %s has wrong parent" i.id b.bname));
                  if Op.is_terminator i.op && tl <> [] then
                    err (errf "terminator mid-block in %s" b.bname);
                  if i.op = Op.Phi && seen_non_phi then
                    err (errf "phi after non-phi in %s" b.bname);
                  check_order (seen_non_phi || i.op <> Op.Phi) tl
            in
            check_order false instrs;
            let last = List.nth instrs (List.length instrs - 1) in
            if not (Op.is_terminator last.op) then
              err (errf "block %s lacks a terminator" b.bname)))
      f.blocks_list;
    if !errors <> [] then List.rev !errors
    else begin
      (* Phi incoming lists must match predecessor sets exactly (for
         reachable blocks). *)
      let dom = dominators f in
      let reachable b = Hashtbl.mem dom b.bid in
      let dominates a b =
        (* does block a dominate block b? *)
        match Hashtbl.find_opt dom b with
        | Some s -> Hashtbl.mem s a
        | None -> false
      in
      List.iter
        (fun b ->
          if reachable b then begin
            let ps = preds_of preds b in
            List.iter
              (fun p ->
                if Array.length p.operands <> Array.length p.blocks then begin
                  err
                    (errf "phi in %s: %d values vs %d incoming blocks"
                       b.bname
                       (Array.length p.operands)
                       (Array.length p.blocks))
                end
                else
                let inc = phi_incoming p in
                List.iter
                  (fun pred ->
                    if
                      not
                        (List.exists (fun (_, blk) -> blk.bid = pred.bid) inc)
                    then
                      err
                        (errf "phi in %s misses incoming for pred %s" b.bname
                           pred.bname))
                  ps;
                List.iter
                  (fun (_, blk) ->
                    if not (List.exists (fun q -> q.bid = blk.bid) ps) then
                      err
                        (errf "phi in %s has incoming for non-pred %s" b.bname
                           blk.bname))
                  inc;
                let seen = Hashtbl.create 4 in
                List.iter
                  (fun (_, blk) ->
                    if Hashtbl.mem seen blk.bid then
                      err
                        (errf "phi in %s has duplicate incoming block %s"
                           b.bname blk.bname);
                    Hashtbl.replace seen blk.bid ())
                  inc)
              (phis b)
          end)
        f.blocks_list;
      (* Def-use dominance.  An instruction's position within its block
         matters: defs must appear before uses in the same block. *)
      let pos = Hashtbl.create 64 in
      List.iter
        (fun b ->
          List.iteri (fun k i -> Hashtbl.replace pos i.id (b.bid, k)) b.instrs)
        f.blocks_list;
      let def_dominates_use (def : instr) (use : instr) ~(incoming : block option) =
        match def.parent, use.parent with
        | Some db, Some ub -> (
            match incoming with
            | Some edge_src ->
                (* value flows along edge edge_src -> ub; def must dominate
                   edge_src (or be in it). *)
                db.bid = edge_src.bid || dominates db.bid edge_src.bid
            | None ->
                if db.bid = ub.bid then
                  let _, dk = Hashtbl.find pos def.id in
                  let _, uk = Hashtbl.find pos use.id in
                  dk < uk
                else dominates db.bid ub.bid)
        | _ -> false
      in
      iter_instrs f (fun i -> type_check_instr err i);
      iter_instrs f (fun i ->
          match i.parent with
          | Some b when reachable b ->
              if i.op = Op.Phi then
                (if Array.length i.operands = Array.length i.blocks then
                List.iter
                  (fun (v, src) ->
                    match v with
                    | Instr def ->
                        if not (def_dominates_use def i ~incoming:(Some src))
                        then
                          err
                            (errf
                               "phi use in %s: def %d does not dominate edge \
                                from %s"
                               b.bname def.id src.bname)
                    | Int _ | Bool _ | Float _ | Undef _ | Param _ -> ())
                  (phi_incoming i))
              else
                Array.iter
                  (fun v ->
                    match v with
                    | Instr def ->
                        if not (def_dominates_use def i ~incoming:None) then
                          err
                            (errf
                               "use in %s (op %s): def %d does not dominate \
                                use %d"
                               b.bname (Op.to_string i.op) def.id i.id)
                    | Int _ | Bool _ | Float _ | Undef _ | Param _ -> ())
                  i.operands
          | _ -> ());
      List.rev !errors
    end
  end

exception Invalid_ir of string

(** Like {!run} but raises {!Invalid_ir} with a readable report on the
    first failure. *)
let run_exn (f : func) : unit =
  match run f with
  | [] -> ()
  | errs ->
      let report =
        Printf.sprintf "IR verification failed for @%s:\n%s\n--- IR ---\n%s"
          f.fname
          (String.concat "\n" (List.map (fun e -> "  - " ^ e.msg) errs))
          (Printer.func_to_string f)
      in
      raise (Invalid_ir report)
