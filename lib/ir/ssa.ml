(** Core SSA data structures: values, instructions, basic blocks, functions
    and modules, plus the mutation primitives used by transformations.

    The representation is deliberately LLVM-like and mutable: instructions
    carry operand arrays that may reference other instructions directly,
    blocks own an ordered instruction list whose last element is the unique
    terminator, and control-flow edges live in the terminator's [blocks]
    array.  [phi] nodes pair each operand with the corresponding incoming
    block in [blocks].

    Invariants (checked by {!Verify}):
    - every reachable block ends in exactly one terminator, which is its
      last instruction;
    - [phi] nodes appear only as a prefix of a block and have exactly one
      incoming entry per CFG predecessor;
    - every instruction operand is defined by an instruction that dominates
      the use (for [phi] uses: dominates the incoming edge's source). *)

type value =
  | Int of int
  | Bool of bool
  | Float of float
  | Undef of Types.ty
  | Param of param
  | Instr of instr

and param = { pname : string; pty : Types.ty; pindex : int }

and instr = {
  id : int;  (** unique within a process; never reused *)
  mutable op : Op.t;
  mutable operands : value array;
  mutable blocks : block array;
      (** [phi]: incoming blocks, index-aligned with [operands];
          [br]: the destination; [condbr]: [| then; else |] *)
  mutable ty : Types.ty;
  mutable parent : block option;
}

and block = {
  bid : int;
  mutable bname : string;
  mutable instrs : instr list;  (** in execution order; last = terminator *)
  mutable bparent : func option;
}

and func = {
  fname : string;
  params : param list;
  mutable blocks_list : block list;  (** first element is the entry block *)
}

type modul = { mname : string; mutable funcs : func list }

(* atomic: kernel instances are built concurrently by the harness's
   domain pool, and duplicate ids within one function would corrupt
   id-keyed lookups *)
let next_id = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add next_id 1 + 1

(* ------------------------------------------------------------------ *)
(* Construction *)

let mk_instr ?(name : string option) op operands blocks ty =
  ignore name;
  { id = fresh_id (); op; operands; blocks; ty; parent = None }

let mk_block name =
  { bid = fresh_id (); bname = name; instrs = []; bparent = None }

let mk_func name params = { fname = name; params; blocks_list = [] }

let mk_module name = { mname = name; funcs = [] }

let value_ty = function
  | Int _ -> Types.I32
  | Bool _ -> Types.I1
  | Float _ -> Types.F32
  | Undef t -> t
  | Param p -> p.pty
  | Instr i -> i.ty

let value_equal (a : value) (b : value) =
  match a, b with
  | Instr i, Instr j -> i.id = j.id
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Float x, Float y -> Float.equal x y
  | Undef t, Undef u -> Types.equal t u
  | Param p, Param q -> p.pindex = q.pindex && String.equal p.pname q.pname
  | (Int _ | Bool _ | Float _ | Undef _ | Param _ | Instr _), _ -> false

(* ------------------------------------------------------------------ *)
(* Block membership and ordering *)

let entry_block (f : func) =
  match f.blocks_list with
  | [] -> invalid_arg "Ssa.entry_block: function has no blocks"
  | b :: _ -> b

let terminator (b : block) : instr =
  let rec last = function
    | [] -> invalid_arg ("Ssa.terminator: empty block " ^ b.bname)
    | [ i ] -> i
    | _ :: tl -> last tl
  in
  last b.instrs

let has_terminator (b : block) =
  match List.rev b.instrs with
  | i :: _ -> Op.is_terminator i.op
  | [] -> false

let phis (b : block) = List.filter (fun i -> i.op = Op.Phi) b.instrs

let non_phis (b : block) = List.filter (fun i -> i.op <> Op.Phi) b.instrs

(** Body instructions: everything that is neither a [phi] nor the
    terminator. *)
let body (b : block) =
  List.filter (fun i -> i.op <> Op.Phi && not (Op.is_terminator i.op)) b.instrs

let successors (b : block) : block list =
  if has_terminator b then Array.to_list (terminator b).blocks else []

(** Append [i] at the end of [b] (after any existing instructions).
    The caller must maintain the terminator-last invariant. *)
let append_instr (b : block) (i : instr) =
  i.parent <- Some b;
  b.instrs <- b.instrs @ [ i ]

(** Insert [i] immediately before the terminator of [b]. *)
let insert_before_terminator (b : block) (i : instr) =
  i.parent <- Some b;
  let rec go = function
    | [] -> [ i ]
    | [ t ] when Op.is_terminator t.op -> [ i; t ]
    | x :: tl -> x :: go tl
  in
  b.instrs <- go b.instrs

(** Insert [i] immediately before [anchor] in its block. *)
let insert_before (anchor : instr) (i : instr) =
  match anchor.parent with
  | None -> invalid_arg "Ssa.insert_before: anchor is detached"
  | Some b ->
      i.parent <- Some b;
      let rec go = function
        | [] -> invalid_arg "Ssa.insert_before: anchor not in its block"
        | x :: tl -> if x.id = anchor.id then i :: x :: tl else x :: go tl
      in
      b.instrs <- go b.instrs

(** Insert [i] after the last [phi] of [b] (i.e. as the first non-phi). *)
let insert_after_phis (b : block) (i : instr) =
  i.parent <- Some b;
  let ps, rest = List.partition (fun x -> x.op = Op.Phi) b.instrs in
  b.instrs <- ps @ (i :: rest)

let remove_instr (b : block) (i : instr) =
  b.instrs <- List.filter (fun x -> x.id <> i.id) b.instrs;
  i.parent <- None

let append_block (f : func) (b : block) =
  b.bparent <- Some f;
  f.blocks_list <- f.blocks_list @ [ b ]

let remove_block (f : func) (b : block) =
  f.blocks_list <- List.filter (fun x -> x.bid <> b.bid) f.blocks_list;
  b.bparent <- None

(* ------------------------------------------------------------------ *)
(* Iteration *)

let iter_instrs (f : func) (g : instr -> unit) =
  List.iter (fun b -> List.iter g b.instrs) f.blocks_list

let fold_instrs (f : func) (g : 'a -> instr -> 'a) (init : 'a) =
  List.fold_left
    (fun acc b -> List.fold_left g acc b.instrs)
    init f.blocks_list

(* ------------------------------------------------------------------ *)
(* CFG edge bookkeeping *)

(** Map from block id to predecessor blocks, recomputed on demand. *)
let predecessors (f : func) : (int, block list) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace tbl b.bid []) f.blocks_list;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find tbl s.bid with Not_found -> [] in
          if not (List.exists (fun p -> p.bid = b.bid) cur) then
            Hashtbl.replace tbl s.bid (b :: cur))
        (successors b))
    f.blocks_list;
  tbl

let preds_of tbl (b : block) = try Hashtbl.find tbl b.bid with Not_found -> []

(** Replace every control-flow edge [src -> old_dest] with
    [src -> new_dest] in [src]'s terminator.  Phi nodes in [old_dest] and
    [new_dest] are {e not} adjusted; callers handle them explicitly. *)
let redirect_edge (src : block) ~(old_dest : block) ~(new_dest : block) =
  let t = terminator src in
  t.blocks <-
    Array.map (fun b -> if b.bid = old_dest.bid then new_dest else b) t.blocks

(* ------------------------------------------------------------------ *)
(* Phi helpers *)

(** Incoming (value, block) pairs of a [phi]. *)
let phi_incoming (i : instr) : (value * block) list =
  assert (i.op = Op.Phi);
  List.combine (Array.to_list i.operands) (Array.to_list i.blocks)

let set_phi_incoming (i : instr) (pairs : (value * block) list) =
  assert (i.op = Op.Phi);
  i.operands <- Array.of_list (List.map fst pairs);
  i.blocks <- Array.of_list (List.map snd pairs)

let phi_add_incoming (i : instr) (v : value) (b : block) =
  set_phi_incoming i (phi_incoming i @ [ (v, b) ])

let phi_incoming_for (i : instr) (pred : block) : value option =
  let rec find = function
    | [] -> None
    | (v, b) :: tl -> if b.bid = pred.bid then Some v else find tl
  in
  find (phi_incoming i)

(** Rename the incoming block [old_pred] to [new_pred] in every phi of
    [b]. *)
let phi_replace_incoming_block (b : block) ~(old_pred : block)
    ~(new_pred : block) =
  List.iter
    (fun p ->
      p.blocks <-
        Array.map
          (fun blk -> if blk.bid = old_pred.bid then new_pred else blk)
          p.blocks)
    (phis b)

(** Drop the incoming entries coming from [pred] in every phi of [b]. *)
let phi_remove_incoming (b : block) ~(pred : block) =
  List.iter
    (fun p ->
      set_phi_incoming p
        (List.filter (fun (_, blk) -> blk.bid <> pred.bid) (phi_incoming p)))
    (phis b)

(* ------------------------------------------------------------------ *)
(* Use replacement *)

(** Replace every use of [old_v] as an operand anywhere in [f] by
    [new_v]. *)
let replace_all_uses (f : func) ~(old_v : value) ~(new_v : value) =
  iter_instrs f (fun i ->
      i.operands <-
        Array.map (fun v -> if value_equal v old_v then new_v else v)
          i.operands)

(** All instructions in [f] that use [v] as an operand. *)
let users (f : func) (v : value) : instr list =
  fold_instrs f
    (fun acc i ->
      if Array.exists (fun o -> value_equal o v) i.operands then i :: acc
      else acc)
    []
  |> List.rev
