(** Two's-complement 32-bit integer semantics.

    This is the single source of truth for the machine model's integer
    arithmetic: the SIMT simulator ({!Darm_sim.Simulator}) and the
    constant folder ({!Darm_transforms.Constfold}) both evaluate
    [Op.ibinop] through {!eval}, so the compile-time folder and the
    runtime interpreter can never diverge.

    The canonical representation of an i32 value is the sign-extended
    OCaml [int] in [-2^31, 2^31 - 1].  {!to_i32} truncates an arbitrary
    OCaml int to that range (modulo 2^32, then sign-extended); {!of_i32}
    is the unsigned 32-bit view of the same bits.  All operations wrap:
    [Add]/[Sub]/[Mul] modulo 2^32, shifts mask their amount to [0, 31],
    [Shl] sign-extends its truncated result (so [1 lsl 31] is
    [-2^31], not [+2^31]), and [Ashr]/[Lshr] operate on the truncated
    32-bit value.  [Sdiv]/[Srem] signal division by zero by returning
    [None] (the simulator traps, the folder declines to fold). *)

let mask = 0xFFFFFFFF

(** Unsigned 32-bit view: the low 32 bits of [x] as a non-negative
    int. *)
let of_i32 (x : int) : int = x land mask

(** Canonical i32: truncate [x] to 32 bits and sign-extend. *)
let to_i32 (x : int) : int =
  let m = x land mask in
  if m land 0x80000000 <> 0 then m - 0x100000000 else m

(** [eval op x y] evaluates [op] under i32 semantics on arbitrary OCaml
    ints (operands are truncated first) and returns the canonical
    result, or [None] for division/remainder by zero. *)
let eval (op : Op.ibinop) (x : int) (y : int) : int option =
  let x = to_i32 x and y = to_i32 y in
  match op with
  | Op.Add -> Some (to_i32 (x + y))
  | Op.Sub -> Some (to_i32 (x - y))
  | Op.Mul ->
      (* native multiplication wraps modulo 2^63; since 2^32 divides
         2^63, truncating the wrapped product still yields the exact
         product modulo 2^32 *)
      Some (to_i32 (x * y))
  | Op.Sdiv -> if y = 0 then None else Some (to_i32 (x / y))
  | Op.Srem -> if y = 0 then None else Some (to_i32 (x mod y))
  | Op.And -> Some (x land y)
  | Op.Or -> Some (x lor y)
  | Op.Xor -> Some (x lxor y)
  | Op.Shl -> Some (to_i32 (x lsl (y land 31)))
  | Op.Lshr -> Some (to_i32 ((x land mask) lsr (y land 31)))
  | Op.Ashr -> Some (x asr (y land 31))
  | Op.Smin -> Some (min x y)
  | Op.Smax -> Some (max x y)

(** Signed comparison on the canonical representations. *)
let compare_i32 (p : Op.icmp_pred) (x : int) (y : int) : bool =
  let x = to_i32 x and y = to_i32 y in
  match p with
  | Op.Ieq -> x = y
  | Op.Ine -> x <> y
  | Op.Islt -> x < y
  | Op.Isle -> x <= y
  | Op.Isgt -> x > y
  | Op.Isge -> x >= y
