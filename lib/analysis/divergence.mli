(** GPU divergence analysis.

    Determines which values and branches can differ between the threads
    of a warp, in the style of LLVM's divergence analysis (Karrenberg &
    Hack):

    - {b data dependence}: [thread.idx] is divergent; any instruction
      with a divergent operand is divergent (this covers loads, whose
      value is divergent exactly when the address is);
    - {b sync dependence}: for each divergent conditional branch, the
      phi nodes at its control-flow joins (every multi-predecessor block
      on a path between the branch and its immediate post-dominator,
      including the post-dominator itself) merge values from paths taken
      by different threads and are therefore divergent; a loop's back
      edge re-entering the header makes a divergent loop exit mark the
      header phis as well (temporal divergence).

    The analysis is a may-analysis: "divergent" is the conservative
    answer.  The melding pass only uses it to {e select} branches worth
    melding, so imprecision costs optimization opportunity, never
    correctness. *)

open Darm_ir

type t

(** [compute ?pdt f] runs the analysis; [pdt] (when supplied) must be
    the current post-dominator tree of [f] and saves recomputing it. *)
val compute : ?pdt:Domtree.t -> Ssa.func -> t

(** The post-dominator tree the analysis was computed over. *)
val pdt : t -> Domtree.t

(** Sorted ids of the divergent instructions — the analysis result as
    plain data, for cross-validation and debugging. *)
val divergent_ids : t -> int list

(** Result equality: same divergent-instruction set. *)
val equal : t -> t -> bool

val is_divergent_instr : t -> Ssa.instr -> bool
val is_divergent_value : t -> Ssa.value -> bool

(** A conditional branch whose condition is thread-dependent. *)
val is_divergent_branch : t -> Ssa.block -> bool

(** Multi-predecessor blocks on paths from the successors of a branch
    block, stopping at (and including) its immediate post-dominator —
    the sync joins of the branch. *)
val sync_joins : Ssa.func -> Domtree.t -> Ssa.block -> Ssa.block list

(** Blocks ending in a divergent conditional branch. *)
val divergent_branches : t -> Ssa.func -> Ssa.block list

(** Human-readable per-value/per-branch report. *)
val report : t -> Ssa.func -> string
