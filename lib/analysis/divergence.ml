(** GPU divergence analysis.

    Determines which values and branches can differ between threads of a
    warp, in the style of LLVM's divergence analysis (Karrenberg & Hack):

    - {b data dependence}: [thread.idx] is divergent; any instruction with
      a divergent operand is divergent (this covers loads, whose value is
      divergent exactly when the address is — a load from a uniform
      address broadcasts one location and is uniform);
    - {b sync dependence}: for each divergent conditional branch, the phi
      nodes at its control-flow joins (every multi-predecessor block on a
      path between the branch and its immediate post-dominator, including
      the post-dominator itself) merge values from paths taken by
      different threads, and are therefore divergent.  Because a loop's
      back edge re-enters the header, a divergent loop exit marks the
      header phis as well (temporal divergence).

    The analysis is a may-analysis: "divergent" is the conservative
    answer.  The melding pass only uses it to {e select} branches worth
    melding, so imprecision costs optimization opportunity, never
    correctness. *)

open Darm_ir
open Darm_ir.Ssa

type t = {
  divergent : (int, unit) Hashtbl.t;  (** divergent instruction ids *)
  pdt : Domtree.t;
}

let is_divergent_instr (t : t) (i : instr) = Hashtbl.mem t.divergent i.id

let is_divergent_value (t : t) (v : value) =
  match v with
  | Instr i -> is_divergent_instr t i
  | Int _ | Bool _ | Float _ | Undef _ | Param _ -> false

(** A conditional branch whose condition is thread-dependent. *)
let is_divergent_branch (t : t) (b : block) : bool =
  has_terminator b
  &&
  let term = terminator b in
  term.op = Op.Condbr && is_divergent_value t term.operands.(0)

(* Body of [sync_joins] over a caller-supplied predecessor table, so
   the fixpoint below can share one table across every query. *)
let sync_joins_with (preds : (int, block list) Hashtbl.t) (pdt : Domtree.t)
    (b : block) : block list =
  match Domtree.idom pdt b with
  | None ->
      (* No post-dominator (e.g. divergence straight to exit): every
         multi-pred block reachable from b is potentially a join. *)
      List.filter
        (fun blk -> List.length (preds_of preds blk) >= 2)
        (Cfg.reachable_without b ~stop:[])
  | Some m ->
      let region =
        List.concat_map
          (fun s -> Cfg.reachable_without s ~stop:[ m ])
          (successors b)
      in
      let joins =
        List.filter
          (fun blk -> List.length (preds_of preds blk) >= 2)
          region
      in
      let dedup = Hashtbl.create 8 in
      let out = ref [ m ] in
      Hashtbl.replace dedup m.bid ();
      List.iter
        (fun j ->
          if not (Hashtbl.mem dedup j.bid) then begin
            Hashtbl.replace dedup j.bid ();
            out := j :: !out
          end)
        joins;
      !out

(** Multi-predecessor blocks on paths from the successors of [b] that
    stop at (and include) [b]'s immediate post-dominator — the sync
    joins of a branch at [b]. *)
let sync_joins (f : func) (pdt : Domtree.t) (b : block) : block list =
  sync_joins_with (predecessors f) pdt b

let compute ?pdt (f : func) : t =
  let pdt =
    match pdt with Some p -> p | None -> Domtree.compute_post f
  in
  let divergent = Hashtbl.create 64 in
  let t = { divergent; pdt } in
  let changed = ref true in
  let mark i =
    if not (Hashtbl.mem divergent i.id) then begin
      Hashtbl.replace divergent i.id ();
      changed := true
    end
  in
  (* The joins of a branch depend only on the CFG and the
     post-dominator tree — not on which values are divergent — so one
     predecessor table and one joins list per branch serve the whole
     fixpoint. *)
  let preds = predecessors f in
  let joins_memo : (int, block list) Hashtbl.t = Hashtbl.create 16 in
  let joins_of (b : block) : block list =
    match Hashtbl.find_opt joins_memo b.bid with
    | Some js -> js
    | None ->
        let js = sync_joins_with preds pdt b in
        Hashtbl.replace joins_memo b.bid js;
        js
  in
  (* seeds *)
  iter_instrs f (fun i -> if i.op = Op.Thread_idx then mark i);
  while !changed do
    changed := false;
    (* data dependence *)
    iter_instrs f (fun i ->
        if (not (Hashtbl.mem divergent i.id)) && i.op <> Op.Phi then
          if Array.exists (is_divergent_value t) i.operands then mark i);
    (* phi data dependence *)
    iter_instrs f (fun i ->
        if i.op = Op.Phi && not (Hashtbl.mem divergent i.id) then
          if Array.exists (is_divergent_value t) i.operands then mark i);
    (* sync dependence *)
    List.iter
      (fun b ->
        if is_divergent_branch t b then
          List.iter (fun join -> List.iter mark (phis join)) (joins_of b))
      f.blocks_list
  done;
  t

(** The post-dominator tree the analysis was computed over (shared with
    callers that would otherwise recompute it). *)
let pdt (t : t) : Domtree.t = t.pdt

(** Sorted ids of the divergent instructions — the analysis result as
    plain data, for cross-validation and debugging. *)
let divergent_ids (t : t) : int list =
  Hashtbl.fold (fun id () acc -> id :: acc) t.divergent []
  |> List.sort compare

(** Result equality: same divergent-instruction set (the post-dominator
    trees are compared separately by their own {!Domtree.equal}). *)
let equal (a : t) (b : t) : bool =
  Hashtbl.length a.divergent = Hashtbl.length b.divergent
  && divergent_ids a = divergent_ids b

(** Blocks ending in a divergent conditional branch. *)
let divergent_branches (t : t) (f : func) : block list =
  List.filter (is_divergent_branch t) (Cfg.reachable_blocks f)

let report (t : t) (f : func) : string =
  let names = Printer.assign_names f in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "divergence report for @%s:\n" f.fname);
  iter_instrs f (fun i ->
      if not (Types.equal i.ty Types.Void) then
        Buffer.add_string buf
          (Printf.sprintf "  %s : %s\n"
             (Printer.value_str names (Instr i))
             (if is_divergent_instr t i then "divergent" else "uniform")));
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "  branch in %s : divergent\n"
           (Printer.block_str names b)))
    (divergent_branches t f);
  Buffer.contents buf
