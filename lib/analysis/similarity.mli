(** Structural similarity signatures for SESE subgraphs — the cheap
    prefilter in front of full isomorphism matching + FP_S scoring
    (à la Lim et al., "A Similarity Measure for GPU Kernel Subgraph
    Matching").

    A signature holds a canonical CFG-shape encoding (mirroring the
    traversal of [Isomorphism.match_subgraphs]) and an aggregated
    opcode-frequency/latency profile.  {!compatible} is a {e necessary}
    condition for isomorphism and {!profit_upper_bound} bounds FP_S
    from above, so skipping pairs that fail {!may_profit} at the
    acceptance threshold is exact: the exhaustive search would have
    rejected them too. *)

open Darm_ir

type t

(** [signature ~lat ~blocks ~entry ~in_subgraph ~exit_dest] summarizes
    one SESE subgraph: [blocks] are all its blocks, [entry] its entry,
    [in_subgraph] the membership test, [exit_dest] the unique external
    successor. *)
val signature :
  lat:Latency.config ->
  blocks:Ssa.block list ->
  entry:Ssa.block ->
  in_subgraph:(Ssa.block -> bool) ->
  exit_dest:Ssa.block ->
  t

val size : t -> int

(** Necessary condition for the pair to be isomorphic; [false] proves
    non-isomorphism. *)
val compatible : t -> t -> bool

(** Upper bound on FP_S over any isomorphic correspondence of the two
    subgraphs (0 when the total latency is 0, matching [fp_s]). *)
val profit_upper_bound : t -> t -> float

(** [may_profit ~threshold a b]: can the pair possibly meld?  [false]
    proves the exhaustive search would skip it (shape mismatch or
    FP_S bound ≤ threshold). *)
val may_profit : threshold:float -> t -> t -> bool

(** Graded structural distance in [0,1] (cosine distance of the
    class-frequency vectors; 1.0 for incompatible shapes), for
    aggressive inexact filtering and observability. *)
val distance : t -> t -> float
