(** Per-function analysis manager: caches the CFG walk, dominator and
    post-dominator trees, divergence and natural loops behind a typed
    query API, and invalidates selectively from the {!Edit} sets that
    transforms report.

    Invalidation rules:

    {v
    edit        cfg/preds  domtree  postdomtree  divergence  loops
    Nothing     keep       keep     keep         keep        keep
    Dce         keep       keep     keep         drop        keep
    Instrs      keep       keep     keep         drop        keep
    Cfg_local   drop       drop     drop         drop        conditional
    Whole       drop       drop     drop         drop        drop
    v}

    Loops survive a [Cfg_local] edit when the rewiring provably cannot
    touch any natural loop (dirty blocks and their successors outside
    every cached loop body, reachable-set changes confined to the dirty
    set, and no cycle through the dirty set); otherwise the forest is
    recomputed — the per-analysis conservative fallback.  The
    post-dominator tree is shared with a cached divergence result in
    both directions.

    Debug mode ([~debug:true] or the [DARM_ANALYSIS_DEBUG] environment
    variable) cross-validates every cache-served query against a
    from-scratch recompute and raises {!Stale_analysis} on mismatch. *)

open Darm_ir

(** Raised in debug mode when a cache-served analysis differs from a
    from-scratch recompute: some transform under-reported an edit. *)
exception Stale_analysis of string

type stats = {
  mutable computes : int;  (** from-scratch analysis runs *)
  mutable reuses : int;
      (** queries served from cache — each one is a recompute a
          manager-less driver would have performed *)
  mutable invalidations : int;  (** cached results dropped by edits *)
  mutable loops_retained : int;
      (** [Cfg_local] edits whose loop forest survived the retention
          test *)
  mutable cross_checks : int;  (** debug-mode recompute comparisons *)
}

type t

(** [create ?debug f] makes an empty manager for [f].  [debug] defaults
    to the [DARM_ANALYSIS_DEBUG] environment variable. *)
val create : ?debug:bool -> Ssa.func -> t

val func : t -> Ssa.func
val stats : t -> stats

(** Cache-served queries so far — the recomputes a manager-less driver
    would have performed (feeds the [analysis_recomputes_avoided]
    counter). *)
val recomputes_avoided : t -> int

(** Reachable blocks in DFS preorder (cached {!Cfg.reachable_blocks}). *)
val reachable : t -> Ssa.block list

(** Cached predecessor table ({!Darm_ir.Ssa.predecessors}). *)
val preds : t -> (int, Ssa.block list) Hashtbl.t

val domtree : t -> Domtree.t
val postdomtree : t -> Domtree.t
val divergence : t -> Divergence.t
val loops : t -> Loops.t

(** Report one edit; invalidates per the table above. *)
val note : t -> Edit.t -> unit

(** Report edits oldest-first (e.g. an {!Edit.drain} result). *)
val note_all : t -> Edit.t list -> unit

(** Conservative full invalidation (= [note m Whole]). *)
val invalidate_all : t -> unit
