(** Natural-loop detection (back edges via the dominator tree). *)

open Darm_ir.Ssa

type loop = {
  header : block;
  latches : block list;    (** sources of back edges into [header] *)
  body : (int, block) Hashtbl.t;  (** all blocks of the loop, incl. header *)
  mutable parent : loop option;
  mutable depth : int;
}

type t = {
  loops : loop list;
  loop_of : (int, loop) Hashtbl.t;  (** block id -> innermost containing loop *)
}

let in_loop (l : loop) (b : block) = Hashtbl.mem l.body b.bid

let blocks_of (l : loop) : block list =
  Hashtbl.fold (fun _ b acc -> b :: acc) l.body []

(** Exiting edges of [l]: pairs (src inside, dest outside). *)
let exit_edges (l : loop) : (block * block) list =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun s -> if in_loop l s then None else Some (b, s))
        (successors b))
    (blocks_of l)

let compute (f : func) : t =
  let dt = Domtree.compute f in
  let preds = predecessors f in
  let reach = Cfg.reachable_blocks f in
  (* back edge: b -> h where h dominates b *)
  let back_edges =
    List.concat_map
      (fun b ->
        List.filter_map
          (fun s ->
            if Domtree.dominates dt s b then Some (b, s) else None)
          (successors b))
      reach
  in
  (* group back edges by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let cur =
        try Hashtbl.find by_header header.bid with Not_found -> (header, [])
      in
      Hashtbl.replace by_header header.bid (header, latch :: snd cur))
    back_edges;
  let loops =
    Hashtbl.fold
      (fun _ (header, latches) acc ->
        (* natural loop body: header + blocks that reach a latch without
           passing through the header *)
        let body = Hashtbl.create 16 in
        Hashtbl.replace body header.bid header;
        let rec pull b =
          if not (Hashtbl.mem body b.bid) then begin
            Hashtbl.replace body b.bid b;
            List.iter pull (preds_of preds b)
          end
        in
        List.iter pull latches;
        { header; latches; body; parent = None; depth = 1 } :: acc)
      by_header []
  in
  (* nesting: loop A is inside loop B if B's body contains A's header and
     A != B; the innermost such B is the parent *)
  List.iter
    (fun a ->
      let candidates =
        List.filter
          (fun b -> b != a && Hashtbl.mem b.body a.header.bid)
          loops
      in
      let innermost =
        List.fold_left
          (fun best c ->
            match best with
            | None -> Some c
            | Some b ->
                if Hashtbl.length c.body < Hashtbl.length b.body then Some c
                else Some b)
          None candidates
      in
      a.parent <- innermost)
    loops;
  let rec depth_of l =
    match l.parent with None -> 1 | Some p -> 1 + depth_of p
  in
  List.iter (fun l -> l.depth <- depth_of l) loops;
  let loop_of = Hashtbl.create 32 in
  List.iter
    (fun l ->
      Hashtbl.iter
        (fun bid _ ->
          match Hashtbl.find_opt loop_of bid with
          | Some prev when prev.depth >= l.depth -> ()
          | _ -> Hashtbl.replace loop_of bid l)
        l.body)
    loops;
  { loops; loop_of }

(** Canonical comparable form of a loop forest: per loop, the header
    id, sorted latch ids and sorted body ids; loops sorted by header.
    Nesting and depth are derived from body containment, so comparing
    signatures compares the whole forest. *)
let signature (t : t) : (int * int list * int list) list =
  List.map
    (fun l ->
      ( l.header.bid,
        List.sort compare (List.map (fun b -> b.bid) l.latches),
        List.sort compare
          (Hashtbl.fold (fun bid _ acc -> bid :: acc) l.body []) ))
    t.loops
  |> List.sort compare

let equal (a : t) (b : t) : bool = signature a = signature b

(** [b] is inside some natural loop (equivalently: [loop_depth t b > 0]). *)
let in_any_loop (t : t) (bid : int) : bool = Hashtbl.mem t.loop_of bid

let innermost_loop (t : t) (b : block) : loop option =
  Hashtbl.find_opt t.loop_of b.bid

let loop_depth (t : t) (b : block) : int =
  match innermost_loop t b with None -> 0 | Some l -> l.depth
