(** Natural-loop detection (back edges via the dominator tree). *)

open Darm_ir

type loop = {
  header : Ssa.block;
  latches : Ssa.block list;  (** sources of back edges into [header] *)
  body : (int, Ssa.block) Hashtbl.t;
      (** all blocks of the loop, incl. header *)
  mutable parent : loop option;
  mutable depth : int;  (** 1 for outermost loops *)
}

type t = {
  loops : loop list;
  loop_of : (int, loop) Hashtbl.t;
      (** block id -> innermost containing loop *)
}

val in_loop : loop -> Ssa.block -> bool
val blocks_of : loop -> Ssa.block list

(** Exiting edges of the loop: pairs (source inside, dest outside). *)
val exit_edges : loop -> (Ssa.block * Ssa.block) list

val compute : Ssa.func -> t
val innermost_loop : t -> Ssa.block -> loop option
val loop_depth : t -> Ssa.block -> int

(** Canonical comparable form: per loop (header id, sorted latch ids,
    sorted body ids), sorted by header. *)
val signature : t -> (int * int list * int list) list

val equal : t -> t -> bool

(** Is the block (by id) inside any natural loop? *)
val in_any_loop : t -> int -> bool
