(** Per-function analysis manager: caches the CFG walk, dominator and
    post-dominator trees, divergence and natural loops behind a typed
    query API, and invalidates selectively from the {!Edit} sets that
    transforms report.

    Invalidation rules (see {!Edit.t} for the edit contracts):

    {v
    edit        cfg/preds  domtree  postdomtree  divergence  loops
    Nothing     keep       keep     keep         keep        keep
    Dce         keep       keep     keep         drop        keep
    Instrs      keep       keep     keep         drop        keep
    Cfg_local   drop       drop     drop         drop        conditional
    Whole       drop       drop     drop         drop        drop
    v}

    [Dce] keeps every CFG-derived analysis (dead-code elimination never
    touches terminators) but drops divergence: the divergent-instruction
    set may shrink when a {e dead} divergent instruction is removed, so
    a cached result would fail the debug-mode set comparison.

    The conditional loop retention after [Cfg_local bids] holds when the
    rewiring provably cannot touch any natural loop; otherwise the
    forest is recomputed (the per-analysis conservative fallback).  The
    retention test, evaluated lazily at the next [loops] query against
    the {e new} CFG:

    - the reachable-block set changed only inside the dirty set (blocks
      that appeared or disappeared were all reported dirty);
    - no dirty block is inside any cached natural loop;
    - no CFG successor of a live dirty block is inside any cached loop
      (by the [Cfg_local] contract every changed edge has its source in
      the dirty set, so these are the only possible new entries into a
      loop);
    - no block of the dirty set is reachable from the dirty set's
      outgoing edges, and the dirty set's internal edges are acyclic —
      together: no new cycle runs through the dirty set, so no new loop
      exists and no cached loop grew.

    Two further cross-analysis shares: the post-dominator tree is served
    from a cached divergence result (which computes one internally), and
    divergence computation is seeded with the cached post-dominator
    tree.

    Debug mode ([~debug:true], or the [DARM_ANALYSIS_DEBUG] environment
    variable) cross-validates every cache-served query against a
    from-scratch recompute and raises {!Stale_analysis} on any mismatch
    — the harness for catching transforms that under-report their
    edits. *)

open Darm_ir.Ssa

(** Raised in debug mode when a cache-served analysis differs from a
    from-scratch recompute: some transform under-reported an edit. *)
exception Stale_analysis of string

type stats = {
  mutable computes : int;  (** from-scratch analysis runs *)
  mutable reuses : int;
      (** queries served from cache — each one is a recompute a
          manager-less driver would have performed *)
  mutable invalidations : int;  (** cached results dropped by edits *)
  mutable loops_retained : int;
      (** [Cfg_local] edits whose loop forest survived the retention
          test *)
  mutable cross_checks : int;  (** debug-mode recompute comparisons *)
}

type t = {
  func : func;
  debug : bool;
  mutable cfg : block list option;  (** reachable blocks, DFS preorder *)
  mutable preds : (int, block list) Hashtbl.t option;
  mutable dt : Domtree.t option;
  mutable pdt : Domtree.t option;
  mutable dvg : Divergence.t option;
  mutable loops : Loops.t option;
  mutable loops_reach : (int, unit) Hashtbl.t;
      (** reachable bid set at the time [loops] was computed *)
  mutable loops_dirty : int list;
      (** dirty bids accumulated since, awaiting the retention test *)
  stats : stats;
}

let debug_env () =
  match Sys.getenv_opt "DARM_ANALYSIS_DEBUG" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let create ?debug (f : func) : t =
  {
    func = f;
    debug = (match debug with Some d -> d | None -> debug_env ());
    cfg = None;
    preds = None;
    dt = None;
    pdt = None;
    dvg = None;
    loops = None;
    loops_reach = Hashtbl.create 1;
    loops_dirty = [];
    stats =
      {
        computes = 0;
        reuses = 0;
        invalidations = 0;
        loops_retained = 0;
        cross_checks = 0;
      };
  }

let func (m : t) : func = m.func
let stats (m : t) : stats = m.stats
let recomputes_avoided (m : t) : int = m.stats.reuses

let stale name =
  raise
    (Stale_analysis
       (Printf.sprintf
          "Manager: cached %s differs from a from-scratch recompute — a \
           transform under-reported its edit set"
          name))

(* ---------------- cached queries ---------------- *)

(* One query worker: [cached]/[store] the slot, [compute] from scratch,
   [check] compares cached against fresh in debug mode. *)
let query (m : t) ~(name : string) ~(cached : unit -> 'a option)
    ~(store : 'a -> unit) ~(compute : unit -> 'a)
    ~(check : 'a -> 'a -> bool) : 'a =
  match cached () with
  | Some v ->
      m.stats.reuses <- m.stats.reuses + 1;
      if m.debug then begin
        m.stats.cross_checks <- m.stats.cross_checks + 1;
        if not (check v (compute ())) then stale name
      end;
      v
  | None ->
      let v = compute () in
      m.stats.computes <- m.stats.computes + 1;
      store v;
      v

let bids (bs : block list) : int list = List.map (fun b -> b.bid) bs

let reachable (m : t) : block list =
  query m ~name:"cfg"
    ~cached:(fun () -> m.cfg)
    ~store:(fun v -> m.cfg <- Some v)
    ~compute:(fun () -> Cfg.reachable_blocks m.func)
    ~check:(fun a b -> bids a = bids b)

let preds_equal (a : (int, block list) Hashtbl.t)
    (b : (int, block list) Hashtbl.t) : bool =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun bid pa acc ->
         acc
         &&
         match Hashtbl.find_opt b bid with
         | None -> false
         | Some pb ->
             List.sort compare (bids pa) = List.sort compare (bids pb))
       a true

let preds (m : t) : (int, block list) Hashtbl.t =
  query m ~name:"preds"
    ~cached:(fun () -> m.preds)
    ~store:(fun v -> m.preds <- Some v)
    ~compute:(fun () -> predecessors m.func)
    ~check:preds_equal

let domtree (m : t) : Domtree.t =
  query m ~name:"domtree"
    ~cached:(fun () -> m.dt)
    ~store:(fun v -> m.dt <- Some v)
    ~compute:(fun () -> Domtree.compute m.func)
    ~check:Domtree.equal

let postdomtree (m : t) : Domtree.t =
  (* a valid divergence result carries the current post-dominator tree *)
  (match m.pdt, m.dvg with
  | None, Some d -> m.pdt <- Some (Divergence.pdt d)
  | _ -> ());
  query m ~name:"postdomtree"
    ~cached:(fun () -> m.pdt)
    ~store:(fun v -> m.pdt <- Some v)
    ~compute:(fun () -> Domtree.compute_post m.func)
    ~check:Domtree.equal

let divergence (m : t) : Divergence.t =
  query m ~name:"divergence"
    ~cached:(fun () -> m.dvg)
    ~store:(fun v ->
      m.dvg <- Some v;
      if m.pdt = None then m.pdt <- Some (Divergence.pdt v))
    ~compute:(fun () ->
      (* seed with the cached post-dominator tree when one is valid *)
      match m.pdt with
      | Some pdt -> Divergence.compute ~pdt m.func
      | None -> Divergence.compute m.func)
    ~check:Divergence.equal

(* Loop-retention test for the accumulated Cfg_local dirty set; see the
   module doc for the four conditions. *)
let loops_still_valid (m : t) (l : Loops.t) : bool =
  let dirty = List.sort_uniq compare m.loops_dirty in
  let in_dirty =
    let tbl = Hashtbl.create 16 in
    List.iter (fun d -> Hashtbl.replace tbl d ()) dirty;
    fun bid -> Hashtbl.mem tbl bid
  in
  let reach = reachable m in
  (* 1. reachable-set changes confined to the dirty set *)
  let reach_ok =
    List.for_all
      (fun b -> Hashtbl.mem m.loops_reach b.bid || in_dirty b.bid)
      reach
    && Hashtbl.fold
         (fun bid () acc ->
           acc
           && (List.exists (fun b -> b.bid = bid) reach || in_dirty bid))
         m.loops_reach true
  in
  reach_ok
  (* 2. no dirty block inside any cached loop *)
  && List.for_all (fun d -> not (Loops.in_any_loop l d)) dirty
  &&
  let live_dirty = List.filter (fun b -> in_dirty b.bid) reach in
  (* 3. no successor of a live dirty block inside any cached loop *)
  List.for_all
    (fun d ->
      List.for_all
        (fun s -> not (Loops.in_any_loop l s.bid))
        (successors d))
    live_dirty
  &&
  (* 4. no cycle through the dirty set: nothing reachable from the
     dirty blocks' successors leads back into the dirty set (this also
     subsumes dirty-internal cycles, since an internal cycle makes a
     dirty block reachable from a dirty successor) *)
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  let rec walk b =
    if !ok && not (Hashtbl.mem seen b.bid) then begin
      Hashtbl.replace seen b.bid ();
      if in_dirty b.bid then ok := false
      else List.iter walk (successors b)
    end
  in
  List.iter (fun d -> List.iter walk (successors d)) live_dirty;
  !ok

let loops (m : t) : Loops.t =
  (* settle a pending retention test first *)
  (match m.loops, m.loops_dirty with
  | Some l, _ :: _ ->
      if loops_still_valid m l then begin
        m.loops_dirty <- [];
        m.stats.loops_retained <- m.stats.loops_retained + 1;
        (* the reachable set may have shifted inside the dirty set *)
        let tbl = Hashtbl.create 64 in
        List.iter (fun b -> Hashtbl.replace tbl b.bid ()) (reachable m);
        m.loops_reach <- tbl
      end
      else begin
        m.loops <- None;
        m.loops_dirty <- [];
        m.stats.invalidations <- m.stats.invalidations + 1
      end
  | _ -> ());
  query m ~name:"loops"
    ~cached:(fun () -> m.loops)
    ~store:(fun v ->
      m.loops <- Some v;
      let tbl = Hashtbl.create 64 in
      List.iter (fun b -> Hashtbl.replace tbl b.bid ()) (reachable m);
      m.loops_reach <- tbl)
    ~compute:(fun () -> Loops.compute m.func)
    ~check:Loops.equal

(* ---------------- invalidation ---------------- *)

let drop_slot (m : t) (present : bool) (clear : unit -> unit) : unit =
  if present then begin
    clear ();
    m.stats.invalidations <- m.stats.invalidations + 1
  end

let drop_cfgish (m : t) : unit =
  drop_slot m (m.cfg <> None) (fun () -> m.cfg <- None);
  drop_slot m (m.preds <> None) (fun () -> m.preds <- None);
  drop_slot m (m.dt <> None) (fun () -> m.dt <- None);
  drop_slot m (m.pdt <> None) (fun () -> m.pdt <- None);
  drop_slot m (m.dvg <> None) (fun () -> m.dvg <- None)

let note (m : t) (e : Edit.t) : unit =
  match e with
  | Edit.Nothing -> ()
  | Edit.Dce _ | Edit.Instrs _ ->
      drop_slot m (m.dvg <> None) (fun () -> m.dvg <- None)
  | Edit.Cfg_local dirty ->
      drop_cfgish m;
      if m.loops <> None then m.loops_dirty <- dirty @ m.loops_dirty
  | Edit.Whole ->
      drop_cfgish m;
      drop_slot m (m.loops <> None) (fun () -> m.loops <- None);
      m.loops_dirty <- []

let note_all (m : t) (es : Edit.t list) : unit = List.iter (note m) es

let invalidate_all (m : t) : unit = note m Edit.Whole
