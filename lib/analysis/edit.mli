(** Edit-set descriptions reported by IR transforms to the analysis
    {!Manager}.

    A transform that mutates a function tells the manager {e what kind}
    of change it made and {e which blocks} it touched; the manager then
    invalidates only the cached analyses that edit can affect.  An edit
    is a contract: reporting a weaker edit than what actually happened
    yields stale analyses — the manager's debug mode exists to catch
    exactly that.

    Dirty-set convention: the listed block ids are blocks that were
    created, deleted, or whose terminator edges or instruction bodies
    changed.  Pure use rewriting (re-pointing operands at new values)
    need not be listed. *)

type t =
  | Nothing  (** no change; preserves everything *)
  | Dce of int list
      (** user-less instructions deleted from the listed blocks; no
          edges changed.  Preserves every CFG-derived analysis; the
          divergence {e facts} about surviving instructions also hold
          (the deleted ones had no users), but the divergent-instruction
          {e set} may shrink, so the cached result is invalidated *)
  | Instrs of int list
      (** instruction bodies changed, terminator edges intact.
          Preserves CFG/domtree/postdomtree/loops; invalidates
          divergence *)
  | Cfg_local of int list
      (** blocks created/deleted and/or edges rewired, all changed
          edge sources within the listed set.  Invalidates
          CFG/domtrees/divergence; loops survive when the dirty set
          provably cannot touch any natural loop *)
  | Whole  (** arbitrary rewrite; invalidates everything *)

(** Edit log accumulated by a transform for its caller; see
    {!Manager.note}. *)
type log = t list ref

val log : unit -> log

(** [note edits e] appends [e] ([None] = no-op). *)
val note : log option -> t -> unit

(** The accumulated edits, oldest first; empties the log. *)
val drain : log -> t list

val dirty_blocks : t -> int list
val to_string : t -> string
