(** Structural similarity signatures for SESE subgraphs — the cheap
    prefilter in front of full isomorphism matching + FP_S scoring
    (à la Lim et al., "A Similarity Measure for GPU Kernel Subgraph
    Matching": per-subgraph feature vectors compared instead of the
    graphs themselves).

    A signature combines:

    - a {b canonical CFG-shape encoding}: the subgraph's terminator
      kinds and internal/external successor pattern along a DFS from the
      entry in successor order — exactly the traversal
      [Isomorphism.match_subgraphs] performs on the pair.  Two subgraphs
      it matches necessarily produce byte-identical encodings, so a
      shape (or block-count) difference proves non-isomorphism and the
      pair can be skipped {e exactly};
    - an {b opcode-frequency/latency profile}: per instruction class,
      the total frequency and the maximum per-block class weight, plus
      the total body latency.  These bound the FP_S score from above
      (see {!profit_upper_bound}), so a pair whose bound is below the
      melding threshold would be rejected by the full computation too —
      again an exact skip.

    With the default threshold the prefilter therefore never changes a
    meld decision; {!distance} additionally offers the papers' graded
    similarity for aggressive (inexact) filtering and observability. *)

open Darm_ir
open Darm_ir.Ssa

(* The profile must mirror Darm_core.Profitability exactly (profiled
   instructions, class set Q, per-block class weight); the library
   layering puts the melding heuristics above this one, so the three
   helpers are restated here and pinned by the fp_s-upper-bound
   property test in the incremental suite. *)
let profiled (b : block) : instr list =
  List.filter
    (fun i -> i.op <> Op.Phi && not (Op.is_terminator i.op))
    b.instrs

let class_key (i : instr) : string = Op.to_string i.op

type t = {
  sg_size : int;  (** block count ([Region.subgraph_size]) *)
  sg_shape : string;  (** canonical shape encoding *)
  sg_matchable : bool;
      (** [false]: the subgraph can never match any subgraph (foreign
          terminator kind, external edge past the exit, or blocks
          unreachable from the entry) *)
  sg_latency : int;  (** Σ body latency over all blocks — lat(S) *)
  sg_classes : (string * int * int) array;
      (** per class, sorted by key: (class, total freq F, max over
          blocks of the per-block class weight W) *)
}

let size (s : t) = s.sg_size

(* Canonical shape walk mirroring Isomorphism.match_subgraphs: DFS from
   the entry in terminator-successor order; per first visit emit the
   terminator kind, per successor emit new-internal (recursion), a
   back-reference to the successor's preorder index, or the external
   exit. *)
let shape_encoding ~(entry : block) ~(in_subgraph : block -> bool)
    ~(exit_dest : block) : string * bool * int =
  let buf = Buffer.create 64 in
  let seen : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let matchable = ref true in
  let count = ref 0 in
  let rec visit (b : block) =
    if not (Hashtbl.mem seen b.bid) then begin
      Hashtbl.replace seen b.bid !count;
      incr count;
      if not (has_terminator b) then matchable := false
      else begin
        let t = terminator b in
        (match t.op with
        | Op.Br -> Buffer.add_char buf 'B'
        | Op.Condbr -> Buffer.add_char buf 'C'
        | _ ->
            (* match_subgraphs only pairs Br/Condbr terminators *)
            matchable := false);
        Array.iter
          (fun s ->
            if in_subgraph s then
              match Hashtbl.find_opt seen s.bid with
              | Some idx ->
                  Buffer.add_char buf 'v';
                  Buffer.add_string buf (string_of_int idx)
              | None ->
                  Buffer.add_char buf 'n';
                  visit s
            else if s.bid = exit_dest.bid then Buffer.add_char buf 'x'
            else
              (* an external edge not to the exit can never pair *)
              matchable := false)
          t.blocks
      end
    end
  in
  visit entry;
  (Buffer.contents buf, !matchable, !count)

let signature ~(lat : Latency.config) ~(blocks : block list)
    ~(entry : block) ~(in_subgraph : block -> bool) ~(exit_dest : block) :
    t =
  let shape, matchable, visited =
    shape_encoding ~entry ~in_subgraph ~exit_dest
  in
  let nblocks = List.length blocks in
  (* blocks unreachable from the entry fail match_subgraphs'
     completeness check against every partner *)
  let matchable = matchable && visited = nblocks in
  let freq : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let wmax : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let latency = ref 0 in
  List.iter
    (fun b ->
      (* per-block class weight = min latency of the class within the
         block (Profitability.class_weight); fold its per-block maximum *)
      let wblock : (string, int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun i ->
          let key = class_key i in
          let l = Latency.of_instr lat i in
          latency := !latency + l;
          Hashtbl.replace freq key
            (1 + Option.value ~default:0 (Hashtbl.find_opt freq key));
          Hashtbl.replace wblock key
            (match Hashtbl.find_opt wblock key with
            | Some prev -> min prev l
            | None -> l))
        (profiled b);
      Hashtbl.iter
        (fun key w ->
          Hashtbl.replace wmax key
            (match Hashtbl.find_opt wmax key with
            | Some prev -> max prev w
            | None -> w))
        wblock)
    blocks;
  let classes =
    Hashtbl.fold
      (fun key f acc -> (key, f, Hashtbl.find wmax key) :: acc)
      freq []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    |> Array.of_list
  in
  {
    sg_size = nblocks;
    sg_shape = shape;
    sg_matchable = matchable;
    sg_latency = !latency;
    sg_classes = classes;
  }

(** Necessary condition for [Isomorphism.match_subgraphs] to succeed:
    both matchable, same block count, identical canonical shape.  A
    [false] answer proves the pair is not isomorphic. *)
let compatible (a : t) (b : t) : bool =
  a.sg_matchable && b.sg_matchable
  && a.sg_size = b.sg_size
  && String.equal a.sg_shape b.sg_shape

(* Merge-walk two sorted class arrays. *)
let fold_common (a : t) (b : t)
    (f : 'acc -> fa:int -> wa:int -> fb:int -> wb:int -> 'acc)
    (init : 'acc) : 'acc =
  let acc = ref init in
  let i = ref 0 and j = ref 0 in
  let na = Array.length a.sg_classes and nb = Array.length b.sg_classes in
  while !i < na && !j < nb do
    let ka, fa, wa = a.sg_classes.(!i) in
    let kb, fb, wb = b.sg_classes.(!j) in
    let c = String.compare ka kb in
    if c = 0 then begin
      acc := f !acc ~fa ~wa ~fb ~wb;
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  !acc

(** Upper bound on [Profitability.fp_s] over any isomorphic block
    correspondence of the two subgraphs:

    FP_S = Σ_pairs Σ_q min(f1,f2)·min(w1,w2) / (lat(S1)+lat(S2))
         ≤ Σ_q min(F1(q),F2(q)) · min(W1(q),W2(q)) / (lat(S1)+lat(S2))

    since per-pair frequencies sum to the subgraph totals and every
    per-block class weight is bounded by the subgraph-wide maximum.
    Zero total latency gives bound 0, matching [fp_s]'s convention. *)
let profit_upper_bound (a : t) (b : t) : float =
  let denom = a.sg_latency + b.sg_latency in
  if denom = 0 then 0.
  else
    let saved =
      fold_common a b
        (fun acc ~fa ~wa ~fb ~wb -> acc + (min fa fb * min wa wb))
        0
    in
    float_of_int saved /. float_of_int denom

(** [may_profit ~threshold a b] — can the pair possibly meld?  [false]
    proves the exhaustive search would skip it too: either the shapes
    cannot match, or the profitability bound is below the acceptance
    threshold ([fp_s > threshold] is required to meld). *)
let may_profit ~(threshold : float) (a : t) (b : t) : bool =
  compatible a b && profit_upper_bound a b > threshold

(** Graded structural distance in [0,1] for aggressive (inexact)
    filtering and observability: cosine distance of the class-frequency
    vectors, 1.0 when the shapes cannot match at all. *)
let distance (a : t) (b : t) : float =
  if not (compatible a b) then 1.
  else
    let dot =
      fold_common a b
        (fun acc ~fa ~wa:_ ~fb ~wb:_ -> acc +. (float_of_int fa *. float_of_int fb))
        0.
    in
    let norm (s : t) =
      sqrt
        (Array.fold_left
           (fun acc (_, f, _) -> acc +. (float_of_int f *. float_of_int f))
           0. s.sg_classes)
    in
    let na = norm a and nb = norm b in
    if na = 0. || nb = 0. then if na = nb then 0. else 1.
    else 1. -. (dot /. (na *. nb))
