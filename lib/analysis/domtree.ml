(** Dominator and post-dominator trees.

    Implementation: the Cooper–Harvey–Kennedy iterative algorithm ("A
    Simple, Fast Dominance Algorithm") over reverse-postorder-indexed
    nodes.  Post-dominators are computed on the reversed CFG with a
    virtual exit node joining every [Ret] block, so functions with
    multiple exits (or none of the blocks post-dominating each other)
    are handled uniformly.

    Dominance queries are O(1) via preorder interval numbering of the
    tree. *)

open Darm_ir.Ssa

type t = {
  index_of : (int, int) Hashtbl.t;  (** block id -> node index *)
  node_block : block option array;  (** node index -> block; [None] = virtual root *)
  idom : int array;                 (** node index -> parent index; root maps to itself *)
  tin : int array;                  (** preorder interval entry *)
  tout : int array;                 (** preorder interval exit *)
  children_ : int list array;
  is_post : bool;
}

(* Generic CHK over an abstract graph: nodes 0..n-1, 0 is the root,
   [preds] in the dominance direction, [rpo] a reverse postorder. *)
let chk_idoms ~(n : int) ~(preds : int list array) ~(rpo : int list) : int array
    =
  let rpo_num = Array.make n (-1) in
  List.iteri (fun k v -> rpo_num.(v) <- k) rpo;
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let processed = List.filter (fun p -> idom.(p) >= 0) preds.(b) in
          match processed with
          | [] -> ()
          | p0 :: rest ->
              let new_idom = List.fold_left intersect p0 rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idom

let build ~(is_post : bool) (f : func) : t =
  (* Enumerate nodes: node 0 is the root (entry block, or the virtual
     exit for the post-dominator tree). *)
  let reach = Cfg.reachable_blocks f in
  let nblocks = List.length reach in
  let n, node_block, root_succs =
    if is_post then
      (* virtual exit = node 0; blocks at nodes 1..n *)
      (nblocks + 1, Array.make (nblocks + 1) None, ())
    else (nblocks, Array.make (max nblocks 1) None, ())
  in
  ignore root_succs;
  let index_of = Hashtbl.create 32 in
  let base = if is_post then 1 else 0 in
  List.iteri
    (fun k b ->
      Hashtbl.replace index_of b.bid (k + base);
      node_block.(k + base) <- Some b)
    reach;
  (* Edges in the *dominance* direction: for dominators, preds = CFG
     preds; for post-dominators, preds = CFG succs, and every Ret block
     has the virtual exit as a successor (edge exit -> ret in the
     reversed graph). *)
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let ptbl = predecessors f in
  List.iter
    (fun b ->
      let bi = Hashtbl.find index_of b.bid in
      let cfg_preds =
        List.filter_map
          (fun p -> Hashtbl.find_opt index_of p.bid)
          (preds_of ptbl b)
      in
      let cfg_succs =
        List.filter_map
          (fun s -> Hashtbl.find_opt index_of s.bid)
          (successors b)
      in
      if is_post then begin
        preds.(bi) <- cfg_succs;
        succs.(bi) <- cfg_preds;
        if has_terminator b && (terminator b).op = Darm_ir.Op.Ret then begin
          preds.(bi) <- 0 :: preds.(bi);
          succs.(0) <- bi :: succs.(0)
        end
      end
      else begin
        preds.(bi) <- cfg_preds;
        succs.(bi) <- cfg_succs
      end)
    reach;
  if (not is_post) && n > 0 then ();
  (* RPO from the root over the dominance-direction graph. *)
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs succs.(v);
      post := v :: !post
    end
  in
  if n > 0 then dfs 0;
  let rpo = !post in
  let idom = chk_idoms ~n ~preds ~rpo in
  (* Tree children + interval numbering. *)
  let children_ = Array.make n [] in
  Array.iteri
    (fun v p -> if v <> 0 && p >= 0 then children_.(p) <- v :: children_.(p))
    idom;
  let tin = Array.make n 0 and tout = Array.make n 0 in
  let clock = ref 0 in
  let rec number v =
    incr clock;
    tin.(v) <- !clock;
    List.iter number children_.(v);
    incr clock;
    tout.(v) <- !clock
  in
  if n > 0 && idom.(0) = 0 then number 0;
  { index_of; node_block; idom; tin; tout; children_; is_post }

let compute (f : func) : t = build ~is_post:false f

let compute_post (f : func) : t = build ~is_post:true f

let node (t : t) (b : block) : int option = Hashtbl.find_opt t.index_of b.bid

(** Immediate (post-)dominator of [b]; [None] for the root, for blocks
    whose immediate post-dominator is the virtual exit, and for
    unreachable blocks. *)
let idom (t : t) (b : block) : block option =
  match node t b with
  | None -> None
  | Some v ->
      if v = 0 then None
      else
        let p = t.idom.(v) in
        if p < 0 then None else t.node_block.(p)

(** [dominates t a b]: does [a] (post-)dominate [b]?  Reflexive. *)
let dominates (t : t) (a : block) (b : block) : bool =
  match node t a, node t b with
  | Some va, Some vb ->
      t.idom.(va) >= 0 && t.idom.(vb) >= 0
      && t.tin.(va) <= t.tin.(vb)
      && t.tout.(vb) <= t.tout.(va)
  | _ -> false

let strictly_dominates (t : t) (a : block) (b : block) : bool =
  a.bid <> b.bid && dominates t a b

let children (t : t) (b : block) : block list =
  match node t b with
  | None -> []
  | Some v -> List.filter_map (fun c -> t.node_block.(c)) t.children_.(v)

(* A node's immediate-dominator fact as comparable data: [None] =
   dominated by the root (entry, or the virtual exit for post-dominator
   trees) or unreachable in the dominance direction; [Some bid] = the
   parent block.  The tin/tout numbering is derived from this relation,
   so comparing it per block compares the whole tree. *)
let idom_fact (t : t) (v : int) : int option =
  if v = 0 then None
  else
    let p = t.idom.(v) in
    if p < 0 then None
    else match t.node_block.(p) with None -> None | Some b -> Some b.bid

(** Structural equality of two trees over the same function: same node
    set (block ids) and same immediate-dominator relation. *)
let equal (a : t) (b : t) : bool =
  a.is_post = b.is_post
  && Hashtbl.length a.index_of = Hashtbl.length b.index_of
  && Hashtbl.fold
       (fun bid va acc ->
         acc
         &&
         match Hashtbl.find_opt b.index_of bid with
         | None -> false
         | Some vb -> idom_fact a va = idom_fact b vb)
       a.index_of true

(** For an instruction-level dominance query: does the definition [def]
    dominate a use at instruction [use]?  Same-block positions are
    resolved by instruction order. *)
let instr_dominates (t : t) (def : Darm_ir.Ssa.instr)
    (use : Darm_ir.Ssa.instr) : bool =
  match def.parent, use.parent with
  | Some db, Some ub ->
      if db.bid = ub.bid then begin
        let rec scan = function
          | [] -> false
          | i :: tl ->
              if i.id = def.id then true
              else if i.id = use.id then false
              else scan tl
        in
        scan db.instrs
      end
      else dominates t db ub
  | _ -> false
