(** Edit-set descriptions reported by IR transforms to the analysis
    {!Manager}.

    A transform that mutates a function tells the manager {e what kind}
    of change it made and {e which blocks} it touched; the manager then
    invalidates only the cached analyses that edit can affect.  An edit
    is a contract: reporting a weaker edit than what actually happened
    (e.g. [Instrs] after rewiring an edge) yields stale analyses — the
    manager's debug mode ({!Manager.create}[ ~debug:true]) exists to
    catch exactly that.

    The block ids listed in an edit are the {e dirty set}: blocks that
    were created, deleted, or whose terminator edges or instruction
    bodies changed.  Blocks whose instructions were merely re-pointed at
    new operand values (use rewriting) need not be listed — operand
    identity is invisible to the CFG-shaped analyses, and the edits that
    rewrite uses ([Cfg_local], [Whole]) already invalidate the
    value-level divergence analysis. *)

type t =
  | Nothing
      (** the transform ran but changed nothing; all analyses remain
          valid *)
  | Dce of int list
      (** user-less non-terminator instructions were deleted from the
          listed blocks; no edges changed.  Preserves every CFG-derived
          analysis (terminators never die).  Divergence facts about the
          surviving instructions also hold — removed instructions have
          no users — but the divergent-instruction set itself may
          shrink, so the cached divergence result is invalidated *)
  | Instrs of int list
      (** instruction bodies of the listed blocks changed (instructions
          added, removed, or operands replaced) but every terminator
          edge is intact.  Preserves the CFG, dominator/post-dominator
          trees and loops; invalidates divergence *)
  | Cfg_local of int list
      (** blocks were created or deleted and/or terminator edges were
          rewired, all within the listed dirty set (every changed edge
          has its source in the set; created and deleted blocks are in
          the set).  Invalidates the CFG, both dominator trees and
          divergence; loops survive when the dirty set provably cannot
          intersect or touch any natural loop (see {!Manager}) *)
  | Whole  (** arbitrary rewrite; invalidates everything *)

(** A log of edits accumulated by a transform on behalf of its caller.
    Transforms take an [?edits:log] parameter and {!note} into it; a
    caller holding a {!Manager} drains the log into the manager after
    the transform returns. *)
type log = t list ref

let log () : log = ref []

(** [note edits e] appends [e] to the log ([None] = no-op, for callers
    that don't track edits). *)
let note (edits : log option) (e : t) : unit =
  match edits with None -> () | Some l -> l := e :: !l

(** The accumulated edits, oldest first. *)
let drain (l : log) : t list =
  let es = List.rev !l in
  l := [];
  es

let dirty_blocks (e : t) : int list =
  match e with
  | Nothing | Whole -> []
  | Dce bids | Instrs bids | Cfg_local bids -> bids

let to_string (e : t) : string =
  let ids bids = String.concat "," (List.map string_of_int bids) in
  match e with
  | Nothing -> "nothing"
  | Dce bids -> Printf.sprintf "dce[%s]" (ids bids)
  | Instrs bids -> Printf.sprintf "instrs[%s]" (ids bids)
  | Cfg_local bids -> Printf.sprintf "cfg-local[%s]" (ids bids)
  | Whole -> "whole"
