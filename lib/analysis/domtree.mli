(** Dominator and post-dominator trees.

    Implementation: the Cooper–Harvey–Kennedy iterative algorithm ("A
    Simple, Fast Dominance Algorithm") over reverse-postorder-indexed
    nodes.  Post-dominators are computed on the reversed CFG with a
    virtual exit node joining every [Ret] block, so functions with
    multiple exits are handled uniformly.  Dominance queries are O(1)
    via preorder interval numbering of the tree.

    For a tree built with {!compute_post}, every "dominates" below reads
    "post-dominates". *)

open Darm_ir

type t

val compute : Ssa.func -> t
val compute_post : Ssa.func -> t

(** Immediate (post-)dominator of a block; [None] for the root, for
    blocks whose immediate post-dominator is the virtual exit, and for
    unreachable blocks. *)
val idom : t -> Ssa.block -> Ssa.block option

(** [dominates t a b]: does [a] (post-)dominate [b]?  Reflexive;
    [false] when either block is unreachable. *)
val dominates : t -> Ssa.block -> Ssa.block -> bool

val strictly_dominates : t -> Ssa.block -> Ssa.block -> bool

val children : t -> Ssa.block -> Ssa.block list

(** Structural equality of two trees over the same function: same node
    set and same immediate-dominator relation. *)
val equal : t -> t -> bool

(** Instruction-level dominance: does the definition [def] dominate a
    use at instruction [use]?  Same-block positions are resolved by
    instruction order. *)
val instr_dominates : t -> Ssa.instr -> Ssa.instr -> bool
