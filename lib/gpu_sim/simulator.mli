(** SIMT execution engine with IPDOM-based reconvergence.

    Models the paper's evaluation platform (an AMD Vega-class GPU) at
    the fidelity the evaluation needs: warps of [warp_size] lanes issue
    instructions in lock-step under an active mask; each warp maintains
    a SIMT reconvergence stack (a divergent conditional branch pushes
    one frame per taken arm with the reconvergence point at the branch
    block's immediate post-dominator); every issued instruction costs
    its {!Darm_analysis.Latency} value in cycles per issue, so divergent
    regions pay for both arms serially while melded regions pay once;
    [syncthreads] suspends a warp until all warps of its block arrive.

    Undef values follow LLVM-style poison semantics: pure ALU operations
    on undef produce undef (melded code executes gap instructions
    speculatively and discards the wrong-side results); dereferencing an
    undef pointer, dividing by undef or branching on undef traps.

    The interpreter doubles as the correctness oracle of the test
    suites: a kernel is run before and after a transformation and the
    final memories must be identical. *)

open Darm_ir

type config = {
  warp_size : int;  (** 64 = an AMD wavefront *)
  latency : Darm_analysis.Latency.config;
  max_cycles_per_warp : int;  (** runaway-loop guard *)
  trace : (string -> unit) option;
      (** legacy string-trace compatibility shim (kept for
          [darm_opt trace]): called once per executed basic block with
          "block=<name> warp=<tid_base> mask=<popcount>".  New tooling
          should use [obs] below — the structured replacement. *)
  obs : Darm_obs.Trace.t option;
      (** structured divergence timeline: one [warp.diverge] /
          [warp.reconverge] / [warp.barrier] instant per warp split,
          reconvergence and barrier (active-mask popcounts, hex masks
          and the stable [branch_id] of the splitting branch in the
          attributes) on tid [1 + tid_base], plus
          per-thread-block cycle spans and a [block.cycles] counter on
          tid 0.  Events are timestamped with the deterministic cycle
          counter, so traces are byte-identical across runs.  [None]
          (the default) emits nothing and leaves the simulation
          bit-identical to an uninstrumented run. *)
  obs_pid : int;
      (** pid stamped on this run's [obs] events (default 1), so two
          simulations — e.g. baseline and melded — can share one
          buffer on disjoint tracks *)
}

val default_config : config

exception Sim_error of string

(** The interpreter's integer ALU: uniform two's-complement i32
    semantics via {!Darm_ir.I32} (the same evaluator the constant
    folder uses, so the two can never diverge).  Raises {!Sim_error} on
    division or remainder by zero.  Exposed for the differential
    property tests. *)
val eval_ibin : Op.ibinop -> int -> int -> int

type launch = { grid_dim : int; block_dim : int }

(** Execute the kernel over the whole grid and return the collected
    metrics.  [args] bind the function parameters positionally; the
    function is verified before execution.

    Beyond the aggregate counters, the result carries per-branch
    divergence attribution ({!Metrics.branch_stats}): every conditional
    branch that split a warp is keyed by its static branch id (block
    name) with its split count, the issue cycles spent inside its arms,
    the idle-lane cycles those splits wasted, and its reconvergence
    count.  Attribution is always on — it costs two array increments
    per issue — and deterministic like every other counter. *)
val run :
  ?config:config ->
  Ssa.func ->
  args:Memory.rv array ->
  global:Memory.t ->
  launch ->
  Metrics.t
