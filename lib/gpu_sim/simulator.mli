(** SIMT execution engine with IPDOM-based reconvergence.

    Models the paper's evaluation platform (an AMD Vega-class GPU) at
    the fidelity the evaluation needs: warps of [warp_size] lanes issue
    instructions in lock-step under an active mask; each warp maintains
    a SIMT reconvergence stack (a divergent conditional branch pushes
    one frame per taken arm with the reconvergence point at the branch
    block's immediate post-dominator); every issued instruction costs
    its {!Darm_analysis.Latency} value in cycles per issue, so divergent
    regions pay for both arms serially while melded regions pay once;
    [syncthreads] suspends a warp until all warps of its block arrive.

    Undef values follow LLVM-style poison semantics: pure ALU operations
    on undef produce undef (melded code executes gap instructions
    speculatively and discards the wrong-side results); dereferencing an
    undef pointer, dividing by undef or branching on undef traps.

    The interpreter doubles as the correctness oracle of the test
    suites: a kernel is run before and after a transformation and the
    final memories must be identical. *)

open Darm_ir

(** Parameters of the hierarchical memory model.  The cache line equals
    the 32-cell coalescing segment, so the L1 is indexed by segment
    number; capacity = [l1_sets * l1_ways] lines.  All state resets at
    thread-block boundaries. *)
type hier_params = {
  l1_sets : int;  (** set count (a power of two is not required) *)
  l1_ways : int;  (** associativity, LRU replacement *)
  l1_hit_lat : int;  (** charged when every touched segment is resident *)
  l1_miss_lat : int;
      (** charged when any segment misses; also the slot occupancy time
          of the in-flight (MSHR) tracker *)
  txn_cycles : int;
      (** serialization cost of each coalesced segment beyond the
          first — the latency face of the transaction counter *)
  lds_conflict_cycles : int;
      (** cycles per extra LDS serialization phase (bank conflicts) *)
  mshr : int;
      (** bounded in-flight segment requests; a miss with every slot
          busy stalls issue until the earliest completes *)
}

(** 64 sets x 4 ways, 28/180-cycle hit/miss, 4 cycles per extra
    segment, 2 per LDS conflict phase, 32 MSHR slots. *)
val default_hier_params : hier_params

(** Memory model selector: [Flat] charges every access its static
    {!Darm_analysis.Latency} value — bit-for-bit the original
    behaviour; [Hier] routes global traffic through coalescing, the L1
    and the MSHR tracker and serializes LDS bank conflicts, so the
    charged latency depends on the dynamic access pattern.  Per-site
    attribution ({!Metrics.site_stats}) is collected under both. *)
type mem_model = Flat | Hier of hier_params

(** Parameters of independent thread scheduling. *)
type its_params = {
  its_reconv_wait : bool;
      (** convergence-optimizer barrier: a lane reaching a split's
          reconvergence point (the branch's IPDOM) parks until the
          sibling lanes of that split arrive, restoring maximal
          convergence on structured code (Volta's reconvergence
          optimizer).  Deadlock-free by construction: whenever no lane
          of a warp is runnable, every parked lane is released, so
          siblings stuck at a [syncthreads] or exited via [ret] can
          never wedge the warp.  [false] reconverges purely
          opportunistically. *)
}

(** [{ its_reconv_wait = true }] — the convergence-optimized variant. *)
val default_its_params : its_params

(** Reconvergence model selector: [Stack] is the IPDOM SIMT
    reconvergence stack — bit-for-bit the original behaviour, pinned by
    the golden cycle counts of [test/suite_reconvergence.ml]; [Its] is
    Volta-style independent thread scheduling: every lane carries its
    own PC and run state, the warp scheduler issues for the runnable
    lane group sharing the minimal (pc, instruction) each cycle
    (MinPC), and lanes reconverge opportunistically when their PCs
    coincide.  Under [Its], [syncthreads] is legal in divergent control
    flow (lanes park individually), where [Stack] must reject it.
    Orthogonal to {!mem_model}: all four combinations are valid.

    Divergence attribution is collected identically under both models:
    per-branch lost-lane cycles sum exactly to
    {!Metrics.t.lost_lane_cycles}, and a kernel with no divergent
    branch costs identical cycles under both. *)
type reconvergence = Stack | Its of its_params

type config = {
  warp_size : int;  (** 64 = an AMD wavefront *)
  latency : Darm_analysis.Latency.config;
  max_cycles_per_warp : int;
      (** runaway-loop guard: issue budget per warp under [Stack],
          per lane under [Its] (so lane interleaving never trips it
          earlier than lock-step execution would) *)
  mem_model : mem_model;  (** default [Flat] *)
  reconvergence : reconvergence;  (** default [Stack] *)
  trace : (string -> unit) option;
      (** legacy string-trace compatibility shim (kept for
          [darm_opt trace]): called once per executed basic block with
          "block=<name> warp=<tid_base> mask=<popcount>".  New tooling
          should use [obs] below — the structured replacement. *)
  obs : Darm_obs.Trace.t option;
      (** structured divergence timeline: one [warp.diverge] /
          [warp.reconverge] / [warp.barrier] instant per warp split,
          reconvergence and barrier (active-mask popcounts, hex masks
          and the stable [branch_id] of the splitting branch in the
          attributes) on tid [1 + tid_base], plus
          per-thread-block cycle spans and a [block.cycles] counter on
          tid 0.  Events are timestamped with the deterministic cycle
          counter, so traces are byte-identical across runs.  [None]
          (the default) emits nothing and leaves the simulation
          bit-identical to an uninstrumented run. *)
  obs_pid : int;
      (** pid stamped on this run's [obs] events (default 1), so two
          simulations — e.g. baseline and melded — can share one
          buffer on disjoint tracks *)
}

val default_config : config

exception Sim_error of string

(** The interpreter's integer ALU: uniform two's-complement i32
    semantics via {!Darm_ir.I32} (the same evaluator the constant
    folder uses, so the two can never diverge).  Raises {!Sim_error} on
    division or remainder by zero.  Exposed for the differential
    property tests. *)
val eval_ibin : Op.ibinop -> int -> int -> int

type launch = { grid_dim : int; block_dim : int }

(** Execute the kernel over the whole grid and return the collected
    metrics.  [args] bind the function parameters positionally; the
    function is verified before execution.

    Beyond the aggregate counters, the result carries per-branch
    divergence attribution ({!Metrics.branch_stats}): every conditional
    branch that split a warp is keyed by its static branch id (block
    name) with its split count, the issue cycles spent inside its arms,
    the idle-lane cycles those splits wasted, and its reconvergence
    count.  Attribution is always on — it costs two array increments
    per issue — and deterministic like every other counter.

    Memory behaviour is attributed the same way
    ({!Metrics.site_stats}): every load/store is keyed by its static
    access site ["<block>#<k>"] with issues, global accesses and
    coalesced transactions, and — under [Hier] — L1 hits/misses,
    bank-conflict cycles and MSHR stall cycles.  Under [Hier] with
    [obs] set the timeline additionally carries [mem.inflight] samples
    (per global access) and a cumulative [mem.l1_hit_rate] sample per
    block boundary on tid 0. *)
val run :
  ?config:config ->
  Ssa.func ->
  args:Memory.rv array ->
  global:Memory.t ->
  launch ->
  Metrics.t
