(** SIMT execution engine with IPDOM-based reconvergence.

    Models the execution substrate of the paper's evaluation platform
    (an AMD Vega-class GPU) at the fidelity the evaluation needs:

    - threads are grouped into warps ([warp_size] lanes, default 64 like
      an AMD wavefront) that issue instructions in lock-step under an
      active mask;
    - each warp maintains a SIMT reconvergence stack: a divergent
      conditional branch pushes one frame per taken arm with the
      reconvergence point set to the branch block's immediate
      post-dominator, and the parent frame resumes there once both arms
      have drained — the IPDOM reconvergence scheme of §I/§II;
    - every issued instruction costs its {!Darm_analysis.Latency} value
      in cycles {e per issue}, so a divergent region pays for both arms
      serially while a melded region pays once — the first-order effect
      behind all of the paper's speedups;
    - [syncthreads] suspends a warp until every warp of its block
      reaches the barrier;
    - the counters of {!Metrics} correspond to the rocprof counters used
      in §VI (ALU utilization, vector/LDS/flat memory instructions).

    Integer arithmetic is uniformly two's-complement i32 via
    {!Darm_ir.I32} — the same evaluator the constant folder uses.

    The interpreter runs over a {e pre-decoded} function representation
    built once per launch by {!prepare}: per-block instruction arrays
    (no list walks on the hot path), dense instruction ids indexing a
    flat register file (no hash lookups per operand), memoized
    per-instruction latencies and classifications, and reusable scratch
    buffers for memory-transaction accounting.

    The interpreter is also the correctness oracle: tests run the same
    kernel before and after melding and require bit-identical memory. *)

open Darm_ir
open Darm_ir.Ssa
open Memory

(** Parameters of the hierarchical memory model.  The cache line equals
    the 32-cell coalescing segment, so the L1 is indexed by segment
    number; capacity = [l1_sets * l1_ways] lines. *)
type hier_params = {
  l1_sets : int;  (** direct set count (power of two not required) *)
  l1_ways : int;  (** associativity, LRU replacement *)
  l1_hit_lat : int;  (** charged when every touched segment is resident *)
  l1_miss_lat : int;
      (** charged when any segment misses; also the slot occupancy time
          of the in-flight (MSHR) tracker *)
  txn_cycles : int;
      (** serialization cost of each coalesced segment beyond the
          first — the latency face of the transaction counter *)
  lds_conflict_cycles : int;
      (** cycles per extra LDS serialization phase (bank conflicts) *)
  mshr : int;
      (** bounded in-flight segment requests; a miss with every slot
          busy stalls issue until the earliest completes *)
}

let default_hier_params : hier_params =
  {
    l1_sets = 64;
    l1_ways = 4;
    l1_hit_lat = 28;
    l1_miss_lat = 180;
    txn_cycles = 4;
    lds_conflict_cycles = 2;
    mshr = 32;
  }

(** Memory model selector: [Flat] charges every access its static
    {!Darm_analysis.Latency} value — the original behaviour,
    bit-for-bit; [Hier] routes global traffic through coalescing, the
    L1 and the MSHR tracker and serializes LDS bank conflicts, so the
    charged latency depends on the dynamic access pattern. *)
type mem_model = Flat | Hier of hier_params

(** Parameters of independent thread scheduling. *)
type its_params = {
  its_reconv_wait : bool;
      (** convergence-optimizer barrier: a lane reaching a divergence's
          reconvergence point (the branch's IPDOM) waits for the sibling
          lanes of that split before proceeding, restoring maximal
          convergence like Volta's compiler-inserted reconvergence
          optimizer.  Deadlock-free by construction: whenever no lane of
          the warp is runnable, every waiting lane is released, so a
          sibling parked at a [syncthreads] (or exited via [ret]) can
          never wedge the warp.  [false] reconverges purely
          opportunistically — lanes join only when their PCs happen to
          coincide. *)
}

let default_its_params : its_params = { its_reconv_wait = true }

(** Reconvergence model selector: [Stack] is the IPDOM SIMT
    reconvergence stack — the original behaviour, bit-for-bit; [Its] is
    Volta-style independent thread scheduling, where every lane carries
    its own PC and active/blocked state and the warp scheduler issues
    for the runnable group of lanes sharing the minimal PC each cycle
    (MinPC), reconverging opportunistically when PCs coincide. *)
type reconvergence = Stack | Its of its_params

type config = {
  warp_size : int;
  latency : Darm_analysis.Latency.config;
  max_cycles_per_warp : int;
      (** runaway-loop guard.  Under [Stack] the budget is shared by the
          warp (lock-step issue); under [Its] each lane carries its own
          budget of this many issues, so interleaving more lanes never
          trips the guard earlier than lock-step execution would. *)
  mem_model : mem_model;
      (** memory subsystem model; [Flat] (the default) keeps per-opcode
          latencies, [Hier] makes coalescing/L1/LDS behaviour
          latency-bearing.  Per-site attribution ({!Metrics.site_stats})
          is collected under both. *)
  reconvergence : reconvergence;
      (** divergence handling model; [Stack] (the default) is the IPDOM
          SIMT stack, [Its] independent thread scheduling.  Orthogonal
          to [mem_model]: all four combinations are valid. *)
  trace : (string -> unit) option;
      (** legacy string-trace shim, kept for [darm_opt trace]: called
          once per executed basic block with
          "block=<name> warp=<tid_base> mask=<popcount>".  New tooling
          should use [obs], the structured replacement. *)
  obs : Darm_obs.Trace.t option;
      (** structured divergence timeline: per-warp [warp.diverge] /
          [warp.reconverge] / [warp.barrier] instants and per-block
          cycle spans, timestamped with the deterministic cycle
          counter.  [None] (the default) emits nothing. *)
  obs_pid : int;
      (** pid stamped on this run's [obs] events, so two simulations
          (e.g. baseline and melded) can share one buffer without
          their tracks colliding *)
}

let default_config : config =
  {
    warp_size = 64;
    latency = Darm_analysis.Latency.default;
    max_cycles_per_warp = 400_000_000;
    mem_model = Flat;
    reconvergence = Stack;
    trace = None;
    obs = None;
    obs_pid = 1;
  }

exception Sim_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

let eval_ibin (op : Op.ibinop) (x : int) (y : int) : int =
  match I32.eval op x y with
  | Some v -> v
  | None -> (
      match op with
      | Op.Sdiv -> errf "sdiv by zero"
      | _ -> errf "srem by zero")

let eval_fbin (op : Op.fbinop) (x : float) (y : float) : float =
  match op with
  | Op.Fadd -> x +. y
  | Op.Fsub -> x -. y
  | Op.Fmul -> x *. y
  | Op.Fdiv -> x /. y
  | Op.Fmin -> Float.min x y
  | Op.Fmax -> Float.max x y

let eval_icmp (p : Op.icmp_pred) (x : int) (y : int) : bool =
  I32.compare_i32 p x y

let eval_fcmp (p : Op.fcmp_pred) (x : float) (y : float) : bool =
  match p with
  | Op.Foeq -> x = y
  | Op.Fone -> x <> y
  | Op.Folt -> x < y
  | Op.Fole -> x <= y
  | Op.Fogt -> x > y
  | Op.Foge -> x >= y

(* ------------------------------------------------------------------ *)
(* Pre-decoded function representation *)

(** Decoded operand: everything an operand fetch needs without touching
    the IR or a hash table. *)
type dop =
  | Dconst of rv  (** literal, canonicalized to i32 at decode time *)
  | Dslot of int  (** register slot of the defining instruction *)
  | Dparam of int  (** kernel argument index *)
  | Dundef
  | Dmissing of string * string
      (** phi hole: (block name, pred name) — trap if ever read *)

type mem_class = Mc_none | Mc_global | Mc_shared | Mc_flat

(** Decoded instruction: opcode plus memoized latency, classification
    and operand/successor arrays.  [d_orig] is kept only for error
    context. *)
type dinstr = {
  d_op : Op.t;
  d_slot : int;  (** destination register slot *)
  d_lat : int;  (** memoized issue latency *)
  d_alu : bool;  (** memoized [Op.is_alu] *)
  d_mem : mem_class;  (** static pointer class of a memory access *)
  d_ptr : int;  (** pointer operand index for load/store, -1 otherwise *)
  d_term : bool;  (** memoized [Op.is_terminator] *)
  d_site : int;
      (** dense static access-site index for load/store ([fctx.sites]
          maps it to the stable "<block>#<k>" id), -1 otherwise *)
  d_ops : dop array;
  d_succ : int array;  (** dense successor block indices *)
  d_imm : int;  (** [Alloc_shared]: offset into shared memory *)
  d_orig : instr;
}

type dphi = {
  p_slot : int;
  p_inc : dop array;  (** incoming value, indexed by dense pred index *)
}

type dblock = {
  db_name : string;
  db_phis : dphi array;
  db_code : dinstr array;  (** body + terminator, phis excluded *)
  db_ipdom : int;  (** reconvergence point (dense index), -1 = none *)
}

type fctx = {
  fn : func;
  dblocks : dblock array;  (** index 0 is the entry block *)
  nslots : int;  (** register-file height: one slot per instruction *)
  max_phis : int;
  shared_size : int;
  sites : string array;
      (** static access-site ids, indexed by [d_site]: "<block>#<k>"
          with [k] the instruction's index among the block's non-phi
          instructions — stable across runs like branch ids *)
}

let prepare (cfg : config) (fn : func) : fctx =
  Verify.run_exn fn;
  let pdt = Darm_analysis.Domtree.compute_post fn in
  let blocks = Array.of_list fn.blocks_list in
  let nblocks = Array.length blocks in
  let bidx : (int, int) Hashtbl.t = Hashtbl.create (2 * nblocks) in
  Array.iteri (fun k b -> Hashtbl.replace bidx b.bid k) blocks;
  (* dense register slots: one per instruction *)
  let slot_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let nslots = ref 0 in
  iter_instrs fn (fun i ->
      Hashtbl.replace slot_of i.id !nslots;
      incr nslots);
  (* shared-memory layout *)
  let shared_layout = Hashtbl.create 4 in
  let off = ref 0 in
  iter_instrs fn (fun i ->
      match i.op with
      | Op.Alloc_shared n ->
          Hashtbl.replace shared_layout i.id !off;
          off := !off + n
      | _ -> ());
  let dop_of (v : value) : dop =
    match v with
    | Int n -> Dconst (Rint (I32.to_i32 n))
    | Bool b -> Dconst (Rbool b)
    | Float x -> Dconst (Rfloat x)
    | Undef _ -> Dundef
    | Param p -> Dparam p.pindex
    | Instr i -> Dslot (Hashtbl.find slot_of i.id)
  in
  let sites_rev = ref [] in
  let nsites = ref 0 in
  let decode_instr ~(bname : string) ~(k : int) (i : instr) : dinstr =
    let d_mem, d_ptr =
      if Op.is_memory i.op then begin
        let pi = if i.op = Op.Store then 1 else 0 in
        ( (match value_ty i.operands.(pi) with
          | Types.Ptr Types.Global -> Mc_global
          | Types.Ptr Types.Shared -> Mc_shared
          | Types.Ptr Types.Flat -> Mc_flat
          | _ -> Mc_none),
          pi )
      end
      else (Mc_none, -1)
    in
    let d_site =
      if d_mem <> Mc_none then begin
        let s = !nsites in
        sites_rev := Printf.sprintf "%s#%d" bname k :: !sites_rev;
        incr nsites;
        s
      end
      else -1
    in
    {
      d_op = i.op;
      d_slot = Hashtbl.find slot_of i.id;
      d_lat = Darm_analysis.Latency.of_instr cfg.latency i;
      d_alu = Op.is_alu i.op;
      d_mem;
      d_ptr;
      d_term = Op.is_terminator i.op;
      d_site;
      d_ops = Array.map dop_of i.operands;
      d_succ = Array.map (fun b -> Hashtbl.find bidx b.bid) i.blocks;
      d_imm =
        (match i.op with
        | Op.Alloc_shared _ -> Hashtbl.find shared_layout i.id
        | _ -> 0);
      d_orig = i;
    }
  in
  let decode_block (b : block) : dblock =
    let db_phis =
      Array.of_list
        (List.map
           (fun p ->
             {
               p_slot = Hashtbl.find slot_of p.id;
               p_inc =
                 Array.map
                   (fun pred ->
                     match phi_incoming_for p pred with
                     | Some v -> dop_of v
                     | None -> Dmissing (b.bname, pred.bname))
                   blocks;
             })
           (phis b))
    in
    let db_code =
      Array.of_list
        (List.mapi
           (fun k i -> decode_instr ~bname:b.bname ~k i)
           (non_phis b))
    in
    let db_ipdom =
      match Darm_analysis.Domtree.idom pdt b with
      | Some r -> Hashtbl.find bidx r.bid
      | None -> -1
    in
    { db_name = b.bname; db_phis; db_code; db_ipdom }
  in
  let dblocks = Array.map decode_block blocks in
  let max_phis =
    Array.fold_left
      (fun acc db -> max acc (Array.length db.db_phis))
      0 dblocks
  in
  {
    fn;
    dblocks;
    nslots = !nslots;
    max_phis;
    shared_size = !off;
    sites = Array.of_list (List.rev !sites_rev);
  }

(* ------------------------------------------------------------------ *)
(* Warp state *)

type frame = {
  mutable pc : int;  (** dense block index *)
  mutable ip : int;  (** resume index into [db_code] (for barriers) *)
  rpc : int;  (** pop when [pc] reaches this block; -1 = never *)
  mask : bool array;
  origin : int;
      (** dense index of the divergent branch block that pushed this
          frame; -1 for uniform control flow.  Issue cycles under the
          frame are attributed to this branch (innermost branch wins
          under nested divergence). *)
  f_lost : int;
      (** lanes of the split's parent mask left inactive while this
          frame runs — the other arm's lane count; 0 when uniform *)
}

type warp_status = Running | At_barrier | Finished

type warp = {
  tid_base : int;  (** thread index (within block) of lane 0 *)
  regs : rv array array;  (** flat register file: [slot].[lane] *)
  pred : int array;  (** per-lane predecessor block (dense), -1 = none *)
  mutable stack : frame list;
  mutable status : warp_status;
}

(** Mutable state of the hierarchical memory model.  Reset at every
    thread-block boundary — blocks are scheduled independently, so
    neither cache contents nor in-flight requests survive a block
    swap. *)
type hier_state = {
  hp : hier_params;
  l1_tags : int array;
      (** resident segment per line, [set * ways + way]; -1 = invalid *)
  l1_lru : int array;  (** last-touch tick per line (LRU victim = min) *)
  mutable l1_tick : int;
  mshr_ready : int array;
      (** cycle at which each in-flight slot frees; clocked by
          [metrics.cycles] *)
}

let make_hier_state (hp : hier_params) : hier_state =
  {
    hp;
    l1_tags = Array.make (max 1 (hp.l1_sets * hp.l1_ways)) (-1);
    l1_lru = Array.make (max 1 (hp.l1_sets * hp.l1_ways)) 0;
    l1_tick = 0;
    mshr_ready = Array.make (max 1 hp.mshr) 0;
  }

let reset_hier_state (h : hier_state) : unit =
  Array.fill h.l1_tags 0 (Array.length h.l1_tags) (-1);
  Array.fill h.l1_lru 0 (Array.length h.l1_lru) 0;
  h.l1_tick <- 0;
  Array.fill h.mshr_ready 0 (Array.length h.mshr_ready) 0

type launch_ctx = {
  cfg : config;
  fctx : fctx;
  args : rv array;
  global : Memory.t;
  shared : Memory.t;
  block_idx : int;
  block_dim : int;
  grid_dim : int;
  metrics : Metrics.t;
  (* reusable scratch, private to this block's sequential warp loop *)
  seg_scratch : int array;  (** distinct global segments, [warp_size] *)
  bank_scratch : int array;  (** shared offsets of one 32-lane phase *)
  phi_stage : rv array array;  (** two-phase phi staging buffers *)
  (* per-branch divergence attribution, indexed by dense block index
     of the branch block; folded into [metrics.branches] (keyed by
     block name — the stable static branch id) at the end of the
     launch.  Shared across the whole grid like the scratch buffers. *)
  br_div : int array;  (** warp splits at this branch *)
  br_cycles : int array;  (** issue cycles inside the branch's arms *)
  br_lost : int array;  (** idle-lane cycles inside the arms *)
  br_reconv : int array;  (** arm completions at the IPDOM *)
  (* per-site memory attribution, indexed by [d_site]; folded into
     [metrics.mem_sites] (keyed by the stable "<block>#<k>" site id) at
     the end of the launch, mirroring the branch arrays above. *)
  ms_issues : int array;
  ms_accesses : int array;
  ms_transactions : int array;
  ms_l1_hits : int array;
  ms_l1_misses : int array;
  ms_bank_conflicts : int array;
  ms_bank_conflict_cycles : int array;
  ms_stall_cycles : int array;
  ms_cycles : int array;
  hier : hier_state option;  (** [Some] iff [cfg.mem_model] is [Hier] *)
}

(* ------------------------------------------------------------------ *)
(* Value evaluation *)

let eval_dop (ctx : launch_ctx) (w : warp) (lane : int) (d : dop) : rv =
  match d with
  | Dconst v -> v
  | Dslot s -> (Array.unsafe_get w.regs s).(lane)
  | Dparam k -> ctx.args.(k)
  | Dundef -> Rundef
  | Dmissing (bname, pname) ->
      errf "phi in %s has no incoming for pred %s" bname pname

let as_int (what : string) = function
  | Rint n -> n
  | Rbool true -> 1
  | Rbool false -> 0
  | Rundef -> errf "%s: use of undef integer" what
  | Rfloat _ | Rptr _ -> errf "%s: expected integer" what

let as_bool (what : string) = function
  | Rbool b -> b
  | Rint n -> n <> 0
  | Rundef -> errf "%s: use of undef condition" what
  | Rfloat _ | Rptr _ -> errf "%s: expected boolean" what

let as_float (what : string) = function
  | Rfloat x -> x
  | Rint n -> float_of_int n
  | Rundef -> errf "%s: use of undef float" what
  | Rbool _ | Rptr _ -> errf "%s: expected float" what

let as_ptr (what : string) = function
  | Rptr (s, o) -> (s, o)
  | Rundef -> errf "%s: dereference of undef pointer" what
  | Rint _ | Rbool _ | Rfloat _ -> errf "%s: expected pointer" what

let mem_for (ctx : launch_ctx) = function
  | Sp_global -> ctx.global
  | Sp_shared -> ctx.shared

(* ------------------------------------------------------------------ *)
(* Cost accounting *)

let popcount (mask : bool array) =
  let c = ref 0 in
  for k = 0 to Array.length mask - 1 do
    if Array.unsafe_get mask k then incr c
  done;
  !c

(* ------------------------------------------------------------------ *)
(* Structured observability.

   Timeline events are stamped with [metrics.cycles] — a deterministic
   function of the execution — so traces are byte-identical across
   runs and domain-pool sizes.  Per-warp events go on tid
   [1 + tid_base] (tid 0 carries the per-block cycle spans). *)

module Tr = Darm_obs.Trace

(* active mask as hex, lane 0 in the least-significant bit *)
let mask_hex (mask : bool array) : string =
  let ws = Array.length mask in
  let nibbles = (ws + 3) / 4 in
  let b = Bytes.create nibbles in
  for k = 0 to nibbles - 1 do
    let v = ref 0 in
    for j = 0 to 3 do
      let lane = ((nibbles - 1 - k) * 4) + j in
      if lane < ws && mask.(lane) then v := !v lor (1 lsl j)
    done;
    Bytes.set b k "0123456789abcdef".[!v]
  done;
  Bytes.to_string b

let obs_warp (ctx : launch_ctx) (w : warp) (name : string)
    (args : (string * Tr.value) list) : unit =
  match ctx.cfg.obs with
  | None -> ()
  | Some tr ->
      Tr.instant tr ~cat:"sim" ~pid:ctx.cfg.obs_pid ~tid:(1 + w.tid_base)
        ~ts:ctx.metrics.Metrics.cycles ~args name

let account (ctx : launch_ctx) (d : dinstr) (fr : frame) : unit =
  let m = ctx.metrics in
  let mask = fr.mask in
  m.cycles <- m.cycles + d.d_lat;
  m.instructions <- m.instructions + 1;
  if fr.origin >= 0 then begin
    (* divergence attribution: this issue runs inside an arm of the
       branch at block [origin]; the split's other-arm lanes idle *)
    ctx.br_cycles.(fr.origin) <- ctx.br_cycles.(fr.origin) + d.d_lat;
    ctx.br_lost.(fr.origin) <-
      ctx.br_lost.(fr.origin) + (fr.f_lost * d.d_lat);
    (* the global counter moves in lock-step with the per-branch one,
       so sum(br_lost_lane_cycles) = lost_lane_cycles exactly *)
    m.lost_lane_cycles <- m.lost_lane_cycles + (fr.f_lost * d.d_lat)
  end;
  if d.d_alu then begin
    m.alu_issues <- m.alu_issues + 1;
    m.alu_active_lanes <- m.alu_active_lanes + popcount mask
  end;
  if d.d_site >= 0 then begin
    ctx.ms_issues.(d.d_site) <- ctx.ms_issues.(d.d_site) + 1;
    ctx.ms_cycles.(d.d_site) <- ctx.ms_cycles.(d.d_site) + d.d_lat;
    m.mem_cycles <- m.mem_cycles + d.d_lat
  end;
  match d.d_mem with
  | Mc_none -> ()
  | Mc_global -> m.mem_global <- m.mem_global + 1
  | Mc_shared -> m.mem_shared <- m.mem_shared + 1
  | Mc_flat -> m.mem_flat <- m.mem_flat + 1

(* Memory coalescing: a warp-wide global access is served in 32-cell
   transactions; the counter records how many distinct segments the
   active lanes touch (rocprof's memory-transaction counters).  Shared
   accesses instead hit 32 word-interleaved banks; lanes touching
   different addresses in the same bank serialize (bank conflicts).
   Both passes run over pre-allocated scratch arrays — no per-issue
   allocation. *)
let account_transactions (ctx : launch_ctx) (w : warp) (d : dinstr)
    (mask : bool array) : unit =
  if d.d_mem <> Mc_none then begin
    let ptr = d.d_ops.(d.d_ptr) in
    let segs = ctx.seg_scratch in
    let nseg = ref 0 in
    (* the 32 LDS banks serve the wavefront in 32-lane phases *)
    let phase = ref 0 in
    while !phase < ctx.cfg.warp_size do
      let bo = ctx.bank_scratch in
      let bn = ref 0 in
      for lane = !phase to min (ctx.cfg.warp_size - 1) (!phase + 31) do
        if mask.(lane) then
          match eval_dop ctx w lane ptr with
          | Rptr (Sp_global, off) ->
              let seg = off / 32 in
              let dup = ref false in
              for k = 0 to !nseg - 1 do
                if segs.(k) = seg then dup := true
              done;
              if not !dup then begin
                segs.(!nseg) <- seg;
                incr nseg
              end
          | Rptr (Sp_shared, off) ->
              bo.(!bn) <- off;
              incr bn
          | _ -> ()
      done;
      (* worst bank = max over banks of distinct offsets in that bank *)
      let worst = ref 0 in
      for b = 0 to 31 do
        let cnt = ref 0 in
        for i = 0 to !bn - 1 do
          if bo.(i) land 31 = b then begin
            let first = ref true in
            for j = 0 to i - 1 do
              if bo.(j) = bo.(i) then first := false
            done;
            if !first then incr cnt
          end
        done;
        if !cnt > !worst then worst := !cnt
      done;
      if !worst > 1 then begin
        ctx.metrics.bank_conflicts <-
          ctx.metrics.bank_conflicts + (!worst - 1);
        ctx.ms_bank_conflicts.(d.d_site) <-
          ctx.ms_bank_conflicts.(d.d_site) + (!worst - 1)
      end;
      phase := !phase + 32
    done;
    if !nseg > 0 then begin
      ctx.metrics.global_transactions <-
        ctx.metrics.global_transactions + !nseg;
      ctx.metrics.global_accesses <- ctx.metrics.global_accesses + 1;
      ctx.ms_transactions.(d.d_site) <-
        ctx.ms_transactions.(d.d_site) + !nseg;
      ctx.ms_accesses.(d.d_site) <- ctx.ms_accesses.(d.d_site) + 1
    end
  end

(* Hierarchical accounting for one memory issue: a combined pass that
   replaces [account] + [account_transactions] when [cfg.mem_model] is
   [Hier].  The coalescing/bank scan is identical to
   [account_transactions] (those counters stay model-independent); on
   top of it the L1 probe decides the charged global latency, each
   coalesced segment beyond the first serializes at [txn_cycles], LDS
   conflict phases cost [lds_conflict_cycles] each, and a miss finding
   every MSHR slot busy stalls issue until the earliest in-flight
   request completes.  The charged issue latency is the slower of the
   global and LDS paths ([d_lat] when the access generated no traffic at
   all), plus any stall. *)
let account_mem_hier (ctx : launch_ctx) (w : warp) (frame : frame)
    (d : dinstr) (h : hier_state) : unit =
  let m = ctx.metrics in
  let hp = h.hp in
  let mask = frame.mask in
  let ptr = d.d_ops.(d.d_ptr) in
  let segs = ctx.seg_scratch in
  let nseg = ref 0 in
  let conflict_phases = ref 0 in
  let shared_seen = ref false in
  let phase = ref 0 in
  while !phase < ctx.cfg.warp_size do
    let bo = ctx.bank_scratch in
    let bn = ref 0 in
    for lane = !phase to min (ctx.cfg.warp_size - 1) (!phase + 31) do
      if mask.(lane) then
        match eval_dop ctx w lane ptr with
        | Rptr (Sp_global, off) ->
            let seg = off / 32 in
            let dup = ref false in
            for k = 0 to !nseg - 1 do
              if segs.(k) = seg then dup := true
            done;
            if not !dup then begin
              segs.(!nseg) <- seg;
              incr nseg
            end
        | Rptr (Sp_shared, off) ->
            shared_seen := true;
            bo.(!bn) <- off;
            incr bn
        | _ -> ()
    done;
    let worst = ref 0 in
    for b = 0 to 31 do
      let cnt = ref 0 in
      for i = 0 to !bn - 1 do
        if bo.(i) land 31 = b then begin
          let first = ref true in
          for j = 0 to i - 1 do
            if bo.(j) = bo.(i) then first := false
          done;
          if !first then incr cnt
        end
      done;
      if !cnt > !worst then worst := !cnt
    done;
    if !worst > 1 then begin
      m.bank_conflicts <- m.bank_conflicts + (!worst - 1);
      ctx.ms_bank_conflicts.(d.d_site) <-
        ctx.ms_bank_conflicts.(d.d_site) + (!worst - 1);
      conflict_phases := !conflict_phases + (!worst - 1)
    end;
    phase := !phase + 32
  done;
  (* L1: one probe per coalesced segment; the access counts as a hit
     only when every segment is resident, so [l1_hits + l1_misses]
     counts accesses, not segments. *)
  let all_hit = ref true in
  for s = 0 to !nseg - 1 do
    let seg = segs.(s) in
    let base = seg mod hp.l1_sets * hp.l1_ways in
    let way = ref (-1) in
    for wy = 0 to hp.l1_ways - 1 do
      if h.l1_tags.(base + wy) = seg then way := wy
    done;
    h.l1_tick <- h.l1_tick + 1;
    if !way >= 0 then h.l1_lru.(base + !way) <- h.l1_tick
    else begin
      all_hit := false;
      let victim = ref 0 in
      for wy = 1 to hp.l1_ways - 1 do
        if h.l1_lru.(base + wy) < h.l1_lru.(base + !victim) then
          victim := wy
      done;
      h.l1_tags.(base + !victim) <- seg;
      h.l1_lru.(base + !victim) <- h.l1_tick
    end
  done;
  let glat =
    if !nseg = 0 then 0
    else
      (if !all_hit then hp.l1_hit_lat else hp.l1_miss_lat)
      + (hp.txn_cycles * (!nseg - 1))
  in
  (* MSHR: a missing access occupies the earliest-free slot for its
     global latency; when no slot is free at issue, the warp stalls. *)
  let stall = ref 0 in
  if !nseg > 0 && not !all_hit then begin
    let slot = ref 0 in
    for k = 1 to Array.length h.mshr_ready - 1 do
      if h.mshr_ready.(k) < h.mshr_ready.(!slot) then slot := k
    done;
    if h.mshr_ready.(!slot) > m.cycles then
      stall := h.mshr_ready.(!slot) - m.cycles;
    h.mshr_ready.(!slot) <- m.cycles + !stall + glat
  end;
  let bc_cycles = !conflict_phases * hp.lds_conflict_cycles in
  let slat = (if !shared_seen then d.d_lat else 0) + bc_cycles in
  let lat = max glat slat in
  let lat = if lat = 0 then d.d_lat else lat in
  let charged = !stall + lat in
  m.cycles <- m.cycles + charged;
  m.instructions <- m.instructions + 1;
  if frame.origin >= 0 then begin
    ctx.br_cycles.(frame.origin) <- ctx.br_cycles.(frame.origin) + charged;
    ctx.br_lost.(frame.origin) <-
      ctx.br_lost.(frame.origin) + (frame.f_lost * charged);
    m.lost_lane_cycles <- m.lost_lane_cycles + (frame.f_lost * charged)
  end;
  (match d.d_mem with
  | Mc_none -> ()
  | Mc_global -> m.mem_global <- m.mem_global + 1
  | Mc_shared -> m.mem_shared <- m.mem_shared + 1
  | Mc_flat -> m.mem_flat <- m.mem_flat + 1);
  m.mem_cycles <- m.mem_cycles + charged;
  ctx.ms_issues.(d.d_site) <- ctx.ms_issues.(d.d_site) + 1;
  ctx.ms_cycles.(d.d_site) <- ctx.ms_cycles.(d.d_site) + charged;
  if !stall > 0 then begin
    m.mem_stall_cycles <- m.mem_stall_cycles + !stall;
    ctx.ms_stall_cycles.(d.d_site) <-
      ctx.ms_stall_cycles.(d.d_site) + !stall
  end;
  if bc_cycles > 0 then begin
    m.bank_conflict_cycles <- m.bank_conflict_cycles + bc_cycles;
    ctx.ms_bank_conflict_cycles.(d.d_site) <-
      ctx.ms_bank_conflict_cycles.(d.d_site) + bc_cycles
  end;
  if !nseg > 0 then begin
    m.global_transactions <- m.global_transactions + !nseg;
    m.global_accesses <- m.global_accesses + 1;
    ctx.ms_transactions.(d.d_site) <- ctx.ms_transactions.(d.d_site) + !nseg;
    ctx.ms_accesses.(d.d_site) <- ctx.ms_accesses.(d.d_site) + 1;
    if !all_hit then begin
      m.l1_hits <- m.l1_hits + 1;
      ctx.ms_l1_hits.(d.d_site) <- ctx.ms_l1_hits.(d.d_site) + 1
    end
    else begin
      m.l1_misses <- m.l1_misses + 1;
      ctx.ms_l1_misses.(d.d_site) <- ctx.ms_l1_misses.(d.d_site) + 1
    end;
    match ctx.cfg.obs with
    | None -> ()
    | Some tr ->
        let inflight = ref 0 in
        for k = 0 to Array.length h.mshr_ready - 1 do
          if h.mshr_ready.(k) > m.cycles then incr inflight
        done;
        Tr.counter tr ~cat:"sim" ~pid:ctx.cfg.obs_pid ~tid:0 ~ts:m.cycles
          "mem.inflight"
          (float_of_int !inflight)
  end

(* ------------------------------------------------------------------ *)
(* Instruction execution *)

(** Execute all phis of the block simultaneously (two-phase read/commit)
    for the active lanes of [frame], staging into the context's
    pre-allocated buffers. *)
let exec_phis (ctx : launch_ctx) (w : warp) (frame : frame) (db : dblock) :
    unit =
  let nphis = Array.length db.db_phis in
  if nphis > 0 then begin
    let ws = ctx.cfg.warp_size in
    for pi = 0 to nphis - 1 do
      let p = db.db_phis.(pi) in
      let stage = ctx.phi_stage.(pi) in
      for lane = 0 to ws - 1 do
        if frame.mask.(lane) then
          stage.(lane) <-
            (let pred = w.pred.(lane) in
             if pred < 0 then Rundef
             else eval_dop ctx w lane p.p_inc.(pred))
      done
    done;
    for pi = 0 to nphis - 1 do
      let p = db.db_phis.(pi) in
      let stage = ctx.phi_stage.(pi) in
      let file = w.regs.(p.p_slot) in
      for lane = 0 to ws - 1 do
        if frame.mask.(lane) then file.(lane) <- stage.(lane)
      done
    done
  end

exception Poison

(** Execute one non-phi, non-terminator instruction under the mask.

    Undef ({e poison}) semantics follow LLVM and real hardware: pure ALU
    operations on undef produce undef (melding executes gap instructions
    speculatively, and their discarded wrong-side results may depend on
    undef entry-phi values); dereferencing an undef pointer, dividing by
    an undef value or branching on an undef condition is a genuine
    error and traps. *)
let exec_instr (ctx : launch_ctx) (w : warp) (frame : frame) (d : dinstr) :
    unit =
  (match ctx.hier with
  | Some h when d.d_mem <> Mc_none -> account_mem_hier ctx w frame d h
  | _ ->
      account ctx d frame;
      if d.d_mem <> Mc_none then account_transactions ctx w d frame.mask);
  let fail_context msg =
    let i = d.d_orig in
    errf "%s (instr %d, op %s, block %s)" msg i.id (Op.to_string i.op)
      (match i.parent with Some b -> b.bname | None -> "?")
  in
  let mask = frame.mask in
  let per_lane (f : int -> rv) : unit =
    let file = w.regs.(d.d_slot) in
    for lane = 0 to ctx.cfg.warp_size - 1 do
      if mask.(lane) then
        file.(lane) <- (try f lane with Poison -> Rundef)
    done
  in
  (* strict operand fetch for operations that must not see undef *)
  let opv_strict k lane =
    match eval_dop ctx w lane d.d_ops.(k) with
    | Rundef ->
        fail_context
          (Printf.sprintf "operand %d is undef in lane %d" k lane)
    | v -> v
  in
  (* poisoning operand fetch for pure ALU operations *)
  let opv k lane =
    match eval_dop ctx w lane d.d_ops.(k) with
    | Rundef -> raise Poison
    | v -> v
  in
  match d.d_op with
  | Op.Ibin ((Op.Sdiv | Op.Srem) as op) ->
      per_lane (fun l ->
          Rint
            (eval_ibin op
               (as_int "ibin" (opv_strict 0 l))
               (as_int "ibin" (opv_strict 1 l))))
  | Op.Ibin op ->
      per_lane (fun l ->
          Rint (eval_ibin op (as_int "ibin" (opv 0 l)) (as_int "ibin" (opv 1 l))))
  | Op.Fbin op ->
      per_lane (fun l ->
          Rfloat
            (eval_fbin op (as_float "fbin" (opv 0 l))
               (as_float "fbin" (opv 1 l))))
  | Op.Icmp p ->
      per_lane (fun l ->
          Rbool
            (eval_icmp p (as_int "icmp" (opv 0 l)) (as_int "icmp" (opv 1 l))))
  | Op.Fcmp p ->
      per_lane (fun l ->
          Rbool
            (eval_fcmp p
               (as_float "fcmp" (opv 0 l))
               (as_float "fcmp" (opv 1 l))))
  | Op.Not -> per_lane (fun l -> Rbool (not (as_bool "not" (opv 0 l))))
  | Op.Select ->
      per_lane (fun l ->
          (* the not-taken arm may be undef without poisoning the result *)
          if as_bool "select" (opv 0 l) then eval_dop ctx w l d.d_ops.(1)
          else eval_dop ctx w l d.d_ops.(2))
  | Op.Load ->
      per_lane (fun l ->
          let sp, off = as_ptr "load" (opv_strict 0 l) in
          Memory.read (mem_for ctx sp) off)
  | Op.Store ->
      for lane = 0 to ctx.cfg.warp_size - 1 do
        if mask.(lane) then begin
          let v = eval_dop ctx w lane d.d_ops.(0) in
          let sp, off = as_ptr "store" (opv_strict 1 lane) in
          Memory.write (mem_for ctx sp) off v
        end
      done
  | Op.Gep ->
      per_lane (fun l ->
          let sp, off = as_ptr "gep" (opv 0 l) in
          Rptr (sp, off + as_int "gep" (opv 1 l)))
  | Op.Thread_idx -> per_lane (fun l -> Rint (w.tid_base + l))
  | Op.Block_idx -> per_lane (fun _ -> Rint ctx.block_idx)
  | Op.Block_dim -> per_lane (fun _ -> Rint ctx.block_dim)
  | Op.Grid_dim -> per_lane (fun _ -> Rint ctx.grid_dim)
  | Op.Alloc_shared _ -> per_lane (fun _ -> Rptr (Sp_shared, d.d_imm))
  | Op.Sitofp ->
      per_lane (fun l -> Rfloat (float_of_int (as_int "sitofp" (opv 0 l))))
  | Op.Fptosi ->
      per_lane (fun l -> Rint (int_of_float (as_float "fptosi" (opv 0 l))))
  | Op.Addrspace_cast -> per_lane (fun l -> opv 0 l)
  | Op.Syncthreads | Op.Phi | Op.Br | Op.Condbr | Op.Ret ->
      errf "exec_instr: %s handled elsewhere" (Op.to_string d.d_op)

(* ------------------------------------------------------------------ *)
(* Control flow *)

let set_pred_for_mask (w : warp) (mask : bool array) (bi : int) : unit =
  for lane = 0 to Array.length mask - 1 do
    if mask.(lane) then w.pred.(lane) <- bi
  done

(** Execute the terminator of the top frame, updating the stack. *)
let exec_terminator (ctx : launch_ctx) (w : warp) (frame : frame)
    (d : dinstr) (db : dblock) : unit =
  account ctx d frame;
  match d.d_op with
  | Op.Ret -> w.stack <- List.tl w.stack
  | Op.Br ->
      set_pred_for_mask w frame.mask frame.pc;
      frame.pc <- d.d_succ.(0);
      frame.ip <- 0
  | Op.Condbr ->
      let ws = ctx.cfg.warp_size in
      let cond = d.d_ops.(0) in
      (* first pass: detect the (common) uniform case without
         allocating the split masks *)
      let tcount = ref 0 and fcount = ref 0 in
      for lane = 0 to ws - 1 do
        if frame.mask.(lane) then
          if as_bool "condbr" (eval_dop ctx w lane cond) then incr tcount
          else incr fcount
      done;
      let cur = frame.pc in
      if !fcount = 0 then begin
        set_pred_for_mask w frame.mask cur;
        frame.pc <- d.d_succ.(0);
        frame.ip <- 0
      end
      else if !tcount = 0 then begin
        set_pred_for_mask w frame.mask cur;
        frame.pc <- d.d_succ.(1);
        frame.ip <- 0
      end
      else begin
        (* the warp splits: IPDOM reconvergence *)
        ctx.metrics.divergent_branches <- ctx.metrics.divergent_branches + 1;
        ctx.br_div.(cur) <- ctx.br_div.(cur) + 1;
        set_pred_for_mask w frame.mask cur;
        let tmask = Array.make ws false in
        let fmask = Array.make ws false in
        for lane = 0 to ws - 1 do
          if frame.mask.(lane) then
            if as_bool "condbr" (eval_dop ctx w lane cond) then
              tmask.(lane) <- true
            else fmask.(lane) <- true
        done;
        let rpc = db.db_ipdom in
        obs_warp ctx w "warp.diverge"
          [
            ("block", Tr.Str db.db_name);
            ("branch_id", Tr.Str db.db_name);
            ("t_active", Tr.Int (popcount tmask));
            ("f_active", Tr.Int (popcount fmask));
            ("t_mask", Tr.Str (mask_hex tmask));
            ("f_mask", Tr.Str (mask_hex fmask));
            ( "reconverge",
              Tr.Str
                (if rpc >= 0 then ctx.fctx.dblocks.(rpc).db_name else "<none>")
            );
          ];
        let t_frame =
          { pc = d.d_succ.(0); ip = 0; rpc; mask = tmask; origin = cur;
            f_lost = !fcount }
        in
        let f_frame =
          { pc = d.d_succ.(1); ip = 0; rpc; mask = fmask; origin = cur;
            f_lost = !tcount }
        in
        if rpc >= 0 then begin
          frame.pc <- rpc;
          frame.ip <- 0;
          w.stack <- t_frame :: f_frame :: w.stack
        end
        else
          (* no reconvergence point: both arms run to completion *)
          w.stack <- t_frame :: f_frame :: List.tl w.stack
      end
  | _ -> errf "exec_terminator: %s is not a terminator" (Op.to_string d.d_op)

(** Run the warp until it finishes or reaches a barrier. *)
let run_warp (ctx : launch_ctx) (w : warp) : unit =
  let dbs = ctx.fctx.dblocks in
  let budget = ref ctx.cfg.max_cycles_per_warp in
  let continue_ = ref true in
  while !continue_ do
    if !budget <= 0 then errf "cycle budget exhausted (runaway loop?)";
    match w.stack with
    | [] ->
        w.status <- Finished;
        continue_ := false
    | frame :: rest ->
        if frame.rpc >= 0 && frame.rpc = frame.pc then begin
          (* reconverged: drop the frame, the parent resumes at rpc *)
          ctx.metrics.reconvergences <- ctx.metrics.reconvergences + 1;
          if frame.origin >= 0 then
            ctx.br_reconv.(frame.origin) <- ctx.br_reconv.(frame.origin) + 1;
          obs_warp ctx w "warp.reconverge"
            [
              ("block", Tr.Str dbs.(frame.pc).db_name);
              ( "branch_id",
                Tr.Str
                  (if frame.origin >= 0 then dbs.(frame.origin).db_name
                   else "<entry>") );
              ("active", Tr.Int (popcount frame.mask));
              ("mask", Tr.Str (mask_hex frame.mask));
            ];
          w.stack <- rest
        end
        else begin
          let db = dbs.(frame.pc) in
          (* string-trace compatibility shim ([darm_opt trace]); the
             structured timeline goes through [obs_warp] instead *)
          (match ctx.cfg.trace with
          | Some emit when frame.ip = 0 ->
              emit
                (Printf.sprintf "block=%s warp=%d mask=%d" db.db_name
                   w.tid_base (popcount frame.mask))
          | _ -> ());
          if frame.ip = 0 then exec_phis ctx w frame db;
          (* execute from the resume index *)
          let code = db.db_code in
          let n = Array.length code in
          let k = ref frame.ip in
          let stop = ref false in
          while not !stop do
            if !k >= n then errf "block %s has no terminator" db.db_name;
            let d = Array.unsafe_get code !k in
            if d.d_term then begin
              exec_terminator ctx w frame d db;
              decr budget;
              stop := true
            end
            else if d.d_op = Op.Syncthreads then begin
              account ctx d frame;
              ctx.metrics.barriers <- ctx.metrics.barriers + 1;
              obs_warp ctx w "warp.barrier"
                [
                  ("block", Tr.Str db.db_name);
                  ("active", Tr.Int (popcount frame.mask));
                ];
              (match w.stack with
              | _ :: _ :: _ -> errf "syncthreads in divergent control flow"
              | _ -> ());
              frame.ip <- !k + 1;
              w.status <- At_barrier;
              stop := true
            end
            else begin
              exec_instr ctx w frame d;
              decr budget;
              incr k
            end
          done;
          if w.status = At_barrier then continue_ := false
        end
  done

(* ------------------------------------------------------------------ *)
(* Independent thread scheduling (ITS).

   Every lane carries its own PC, instruction index and run state; the
   warp scheduler repeatedly picks the runnable group of lanes sharing
   the lexicographically minimal (pc, ip) — MinPC — and issues one
   instruction for that group.  Lanes reconverge opportunistically when
   their PCs coincide; with [its_reconv_wait] a lane reaching a split's
   reconvergence point additionally parks until its sibling lanes
   arrive (the convergence-optimizer barrier), which restores maximal
   convergence on structured code.  Liveness is unconditional: whenever
   no lane of the warp is runnable, every parked lane is released, so
   siblings stuck at a [syncthreads] or exited via [ret] can never
   wedge the warp — [syncthreads] stays deadlock-free under divergence,
   where the SIMT stack model must reject it.

   Divergence attribution reuses the stack model's machinery: each
   issue goes through a scratch [frame] whose [origin] is the issuing
   group leader's innermost open split and whose [f_lost] counts the
   warp's other non-retired lanes, so [account] / [account_mem_hier]
   feed the same per-branch and global lost-lane counters and the
   exact-sum identities hold under both models. *)

(** One open split a lane is inside of: the branch block that split the
    warp and the reconvergence point where the entry pops.  A lane's
    list is innermost-first, mirroring the stack model's frame
    nesting. *)
type lane_entry = { le_origin : int; le_rpc : int }

type lane_status =
  | L_run
  | L_wait  (** parked at a reconvergence point for sibling lanes *)
  | L_barrier  (** parked at [syncthreads] *)
  | L_done

(** Per-lane scheduling state of one warp under ITS. *)
type its_warp = {
  iw_pc : int array;  (** per-lane dense block index *)
  iw_ip : int array;  (** per-lane index into [db_code] *)
  iw_stat : lane_status array;
  iw_div : lane_entry list array;  (** open splits, innermost first *)
  iw_wait : (int * int) array;
      (** the (origin, rpc) a [L_wait] lane is parked on *)
  iw_budget : int array;  (** per-lane runaway-loop guard *)
}

let make_its_warp (cfg : config) ~(live : int) : its_warp =
  let ws = cfg.warp_size in
  {
    iw_pc = Array.make ws 0;
    iw_ip = Array.make ws 0;
    iw_stat = Array.init ws (fun l -> if l < live then L_run else L_done);
    iw_div = Array.make ws [];
    iw_wait = Array.make ws (-1, -1);
    iw_budget = Array.make ws cfg.max_cycles_per_warp;
  }

(* lanes (other than [except], not retired) still inside split (o, r) *)
let its_holders (iw : its_warp) (ws : int) (o : int) (r : int)
    (except : int) : int =
  let n = ref 0 in
  for l = 0 to ws - 1 do
    if
      l <> except
      && iw.iw_stat.(l) <> L_done
      && List.exists
           (fun e -> e.le_origin = o && e.le_rpc = r)
           iw.iw_div.(l)
    then incr n
  done;
  !n

(** Run one warp under ITS until every lane is retired or parked at a
    barrier. *)
let run_warp_its (ctx : launch_ctx) (p : its_params) (w : warp)
    (iw : its_warp) : unit =
  let ws = ctx.cfg.warp_size in
  let dbs = ctx.fctx.dblocks in
  let m = ctx.metrics in
  let gmask = Array.make ws false in
  (* wake every lane parked on (o, r) — the split has fully drained (or
     the warp would otherwise stall) *)
  let wake o r =
    for l = 0 to ws - 1 do
      if iw.iw_stat.(l) = L_wait && iw.iw_wait.(l) = (o, r) then begin
        iw.iw_stat.(l) <- L_run;
        iw.iw_wait.(l) <- (-1, -1)
      end
    done
  in
  let reconverge_event o r =
    m.reconvergences <- m.reconvergences + 1;
    ctx.br_reconv.(o) <- ctx.br_reconv.(o) + 1;
    if ctx.cfg.obs <> None then begin
      let joined = Array.make ws false in
      for l = 0 to ws - 1 do
        joined.(l) <-
          iw.iw_stat.(l) <> L_done && iw.iw_pc.(l) = r
      done;
      obs_warp ctx w "warp.reconverge"
        [
          ("block", Tr.Str dbs.(r).db_name);
          ("branch_id", Tr.Str dbs.(o).db_name);
          ("active", Tr.Int (popcount joined));
          ("mask", Tr.Str (mask_hex joined));
        ]
    end
  in
  (* at a block entry, pop every open split whose reconvergence point
     is this block; with [its_reconv_wait] park for straggling siblings *)
  let process_pops lane =
    let continue_ = ref true in
    while !continue_ && iw.iw_stat.(lane) = L_run do
      match iw.iw_div.(lane) with
      | { le_origin = o; le_rpc = r } :: rest when r = iw.iw_pc.(lane) ->
          iw.iw_div.(lane) <- rest;
          if its_holders iw ws o r lane = 0 then begin
            (* last lane out of the split: this is the reconvergence *)
            reconverge_event o r;
            wake o r
          end
          else if p.its_reconv_wait then begin
            iw.iw_stat.(lane) <- L_wait;
            iw.iw_wait.(lane) <- (o, r)
          end
      | _ -> continue_ := false
    done
  in
  let arrive lane bi =
    iw.iw_pc.(lane) <- bi;
    iw.iw_ip.(lane) <- 0
  in
  let running = ref true in
  while !running do
    (* reconvergence pops happen at block entry, before any issue (also
       covers lanes re-checked after a wake) *)
    for l = 0 to ws - 1 do
      if iw.iw_stat.(l) = L_run && iw.iw_ip.(l) = 0 then process_pops l
    done;
    let any st =
      let found = ref false in
      for l = 0 to ws - 1 do
        if iw.iw_stat.(l) = st then found := true
      done;
      !found
    in
    if not (any L_run) then begin
      if any L_wait then
        (* liveness backstop: no runnable lane — release every parked
           lane (its sibling lanes are at a barrier, retired, or parked
           themselves; the reconvergence-point wait must yield) *)
        for l = 0 to ws - 1 do
          if iw.iw_stat.(l) = L_wait then begin
            iw.iw_stat.(l) <- L_run;
            iw.iw_wait.(l) <- (-1, -1)
          end
        done
      else running := false
    end
    else begin
      (* MinPC: the runnable group with the minimal (pc, ip) *)
      let leader = ref (-1) in
      for l = 0 to ws - 1 do
        if iw.iw_stat.(l) = L_run then
          if
            !leader < 0
            || iw.iw_pc.(l) < iw.iw_pc.(!leader)
            || (iw.iw_pc.(l) = iw.iw_pc.(!leader)
               && iw.iw_ip.(l) < iw.iw_ip.(!leader))
          then leader := l
      done;
      let pc = iw.iw_pc.(!leader) and ip = iw.iw_ip.(!leader) in
      let gsize = ref 0 and alive = ref 0 in
      for l = 0 to ws - 1 do
        let in_group =
          iw.iw_stat.(l) = L_run && iw.iw_pc.(l) = pc && iw.iw_ip.(l) = ip
        in
        gmask.(l) <- in_group;
        if in_group then incr gsize;
        if iw.iw_stat.(l) = L_run || iw.iw_stat.(l) = L_wait then
          incr alive
      done;
      let db = dbs.(pc) in
      let code = db.db_code in
      if ip >= Array.length code then
        errf "block %s has no terminator" db.db_name;
      (match ctx.cfg.trace with
      | Some emit when ip = 0 ->
          emit
            (Printf.sprintf "block=%s warp=%d mask=%d" db.db_name
               w.tid_base !gsize)
      | _ -> ());
      (* attribution: the group leader's innermost open split wins (the
         stack model's innermost-frame rule); the split's cost in idle
         lanes is every live lane the group leaves behind *)
      let origin =
        match iw.iw_div.(!leader) with e :: _ -> e.le_origin | [] -> -1
      in
      let fr =
        { pc; ip; rpc = -1; mask = gmask; origin; f_lost = !alive - !gsize }
      in
      if ip = 0 then exec_phis ctx w fr db;
      let d = Array.unsafe_get code ip in
      for l = 0 to ws - 1 do
        if gmask.(l) then begin
          if iw.iw_budget.(l) <= 0 then
            errf "cycle budget exhausted in lane %d (runaway loop?)"
              (w.tid_base + l);
          iw.iw_budget.(l) <- iw.iw_budget.(l) - 1
        end
      done;
      if d.d_term then begin
        account ctx d fr;
        match d.d_op with
        | Op.Ret ->
            for l = 0 to ws - 1 do
              if gmask.(l) then iw.iw_stat.(l) <- L_done
            done
        | Op.Br ->
            set_pred_for_mask w gmask pc;
            for l = 0 to ws - 1 do
              if gmask.(l) then arrive l d.d_succ.(0)
            done
        | Op.Condbr ->
            let cond = d.d_ops.(0) in
            let tcount = ref 0 and fcount = ref 0 in
            for l = 0 to ws - 1 do
              if gmask.(l) then
                if as_bool "condbr" (eval_dop ctx w l cond) then
                  incr tcount
                else incr fcount
            done;
            set_pred_for_mask w gmask pc;
            if !fcount = 0 then
              for l = 0 to ws - 1 do
                if gmask.(l) then arrive l d.d_succ.(0)
              done
            else if !tcount = 0 then
              for l = 0 to ws - 1 do
                if gmask.(l) then arrive l d.d_succ.(1)
              done
            else begin
              (* the group splits: open a per-lane divergence entry;
                 lanes rejoin at the IPDOM (or opportunistically
                 earlier when their PCs coincide) *)
              m.divergent_branches <- m.divergent_branches + 1;
              ctx.br_div.(pc) <- ctx.br_div.(pc) + 1;
              let rpc = db.db_ipdom in
              if ctx.cfg.obs <> None then begin
                let tmask = Array.make ws false in
                let fmask = Array.make ws false in
                for l = 0 to ws - 1 do
                  if gmask.(l) then
                    if as_bool "condbr" (eval_dop ctx w l cond) then
                      tmask.(l) <- true
                    else fmask.(l) <- true
                done;
                obs_warp ctx w "warp.diverge"
                  [
                    ("block", Tr.Str db.db_name);
                    ("branch_id", Tr.Str db.db_name);
                    ("t_active", Tr.Int !tcount);
                    ("f_active", Tr.Int !fcount);
                    ("t_mask", Tr.Str (mask_hex tmask));
                    ("f_mask", Tr.Str (mask_hex fmask));
                    ( "reconverge",
                      Tr.Str
                        (if rpc >= 0 then dbs.(rpc).db_name else "<none>")
                    );
                  ]
              end;
              for l = 0 to ws - 1 do
                if gmask.(l) then begin
                  iw.iw_div.(l) <-
                    { le_origin = pc; le_rpc = rpc } :: iw.iw_div.(l);
                  if as_bool "condbr" (eval_dop ctx w l cond) then
                    arrive l d.d_succ.(0)
                  else arrive l d.d_succ.(1)
                end
              done
            end
        | _ ->
            errf "run_warp_its: %s is not a terminator"
              (Op.to_string d.d_op)
      end
      else if d.d_op = Op.Syncthreads then begin
        account ctx d fr;
        m.barriers <- m.barriers + 1;
        obs_warp ctx w "warp.barrier"
          [
            ("block", Tr.Str db.db_name); ("active", Tr.Int !gsize);
          ];
        for l = 0 to ws - 1 do
          if gmask.(l) then begin
            iw.iw_stat.(l) <- L_barrier;
            iw.iw_ip.(l) <- ip + 1
          end
        done
      end
      else begin
        exec_instr ctx w fr d;
        for l = 0 to ws - 1 do
          if gmask.(l) then iw.iw_ip.(l) <- ip + 1
        done
      end
    end
  done;
  w.status <-
    (if Array.for_all (fun s -> s = L_done) iw.iw_stat then Finished
     else At_barrier)

(* ------------------------------------------------------------------ *)
(* Grid launch *)

type launch = { grid_dim : int; block_dim : int }

(** [run ?config fn ~args ~global launch] executes the kernel over the
    whole grid and returns the collected metrics.  [args] bind the
    function parameters positionally. *)
let run ?(config = default_config) (fn : func) ~(args : rv array)
    ~(global : Memory.t) (launch : launch) : Metrics.t =
  if List.length fn.params <> Array.length args then
    errf "kernel @%s expects %d arguments, got %d" fn.fname
      (List.length fn.params) (Array.length args);
  let fctx = prepare config fn in
  let metrics = Metrics.create () in
  let ws = config.warp_size in
  (* scratch buffers live across the whole grid: blocks (and the warps
     within a block) execute sequentially on this domain *)
  let seg_scratch = Array.make ws 0 in
  let bank_scratch = Array.make 32 0 in
  let phi_stage =
    Array.init (max fctx.max_phis 1) (fun _ -> Array.make ws Rundef)
  in
  let nblocks = Array.length fctx.dblocks in
  let br_div = Array.make nblocks 0 in
  let br_cycles = Array.make nblocks 0 in
  let br_lost = Array.make nblocks 0 in
  let br_reconv = Array.make nblocks 0 in
  let nsites = Array.length fctx.sites in
  let msa () = Array.make (max 1 nsites) 0 in
  let ms_issues = msa () in
  let ms_accesses = msa () in
  let ms_transactions = msa () in
  let ms_l1_hits = msa () in
  let ms_l1_misses = msa () in
  let ms_bank_conflicts = msa () in
  let ms_bank_conflict_cycles = msa () in
  let ms_stall_cycles = msa () in
  let ms_cycles = msa () in
  let hier =
    match config.mem_model with
    | Flat -> None
    | Hier hp -> Some (make_hier_state hp)
  in
  for block_idx = 0 to launch.grid_dim - 1 do
    let cycles_before = metrics.cycles in
    (match hier with
    | Some h -> reset_hier_state h
    | None -> ());
    (match config.obs with
    | None -> ()
    | Some tr ->
        Tr.begin_span tr ~cat:"sim" ~pid:config.obs_pid ~tid:0
          ~ts:metrics.cycles
          ~args:[ ("block_idx", Tr.Int block_idx) ]
          "block");
    let shared =
      Memory.create ~space:Sp_shared (max fctx.shared_size 1)
    in
    let ctx =
      {
        cfg = config;
        fctx;
        args;
        global;
        shared;
        block_idx;
        block_dim = launch.block_dim;
        grid_dim = launch.grid_dim;
        metrics;
        seg_scratch;
        bank_scratch;
        phi_stage;
        br_div;
        br_cycles;
        br_lost;
        br_reconv;
        ms_issues;
        ms_accesses;
        ms_transactions;
        ms_l1_hits;
        ms_l1_misses;
        ms_bank_conflicts;
        ms_bank_conflict_cycles;
        ms_stall_cycles;
        ms_cycles;
        hier;
      }
    in
    let nwarps = (launch.block_dim + ws - 1) / ws in
    let warps =
      Array.init nwarps (fun wi ->
          let tid_base = wi * ws in
          let live = min ws (launch.block_dim - tid_base) in
          let mask = Array.init ws (fun l -> l < live) in
          {
            tid_base;
            regs = Array.init fctx.nslots (fun _ -> Array.make ws Rundef);
            pred = Array.make ws (-1);
            stack =
              [ { pc = 0; ip = 0; rpc = -1; mask; origin = -1; f_lost = 0 } ];
            status = Running;
          })
    in
    (* per-lane scheduling state, allocated only under ITS *)
    let its_p =
      match config.reconvergence with Stack -> None | Its p -> Some p
    in
    let its_warps =
      match its_p with
      | None -> [||]
      | Some _ ->
          Array.init nwarps (fun wi ->
              let live = min ws (launch.block_dim - (wi * ws)) in
              make_its_warp config ~live)
    in
    (* phase execution: run every warp to its next barrier or the end;
       release the barrier when all non-finished warps have reached it *)
    let all_done () =
      Array.for_all (fun w -> w.status = Finished) warps
    in
    let guard = ref 0 in
    while not (all_done ()) do
      incr guard;
      if !guard > 1_000_000 then errf "barrier deadlock";
      Array.iteri
        (fun wi w ->
          if w.status = Running then
            match its_p with
            | None -> run_warp ctx w
            | Some p -> run_warp_its ctx p w its_warps.(wi))
        warps;
      (* all running warps have now either finished or hit a barrier *)
      let at_barrier =
        Array.exists (fun w -> w.status = At_barrier) warps
      in
      if at_barrier then
        Array.iteri
          (fun wi w ->
            if w.status = At_barrier then begin
              w.status <- Running;
              match its_p with
              | None -> ()
              | Some _ ->
                  let iw = its_warps.(wi) in
                  for l = 0 to ws - 1 do
                    if iw.iw_stat.(l) = L_barrier then
                      iw.iw_stat.(l) <- L_run
                  done
            end)
          warps
    done;
    (* CONTRACT: block_cycles is kept most-recent-block-first; see
       {!Metrics.t} *)
    metrics.block_cycles <-
      (metrics.cycles - cycles_before) :: metrics.block_cycles;
    match config.obs with
    | None -> ()
    | Some tr ->
        Tr.end_span tr ~cat:"sim" ~pid:config.obs_pid ~tid:0 ~ts:metrics.cycles
          "block";
        Tr.counter tr ~cat:"sim" ~pid:config.obs_pid ~tid:0 ~ts:metrics.cycles
          "block.cycles"
          (float_of_int (metrics.cycles - cycles_before));
        (* cumulative L1 hit rate, one sample per block boundary *)
        if hier <> None then
          Tr.counter tr ~cat:"sim" ~pid:config.obs_pid ~tid:0
            ~ts:metrics.cycles "mem.l1_hit_rate"
            (Metrics.l1_hit_rate metrics)
  done;
  (* fold the dense attribution arrays into the metrics, keyed by the
     stable static branch id (the branch block's name) *)
  for bi = 0 to nblocks - 1 do
    if br_div.(bi) > 0 || br_cycles.(bi) > 0 || br_reconv.(bi) > 0 then begin
      let s = Metrics.touch_branch metrics fctx.dblocks.(bi).db_name in
      s.Metrics.br_divergences <- s.Metrics.br_divergences + br_div.(bi);
      s.Metrics.br_cycles <- s.Metrics.br_cycles + br_cycles.(bi);
      s.Metrics.br_lost_lane_cycles <-
        s.Metrics.br_lost_lane_cycles + br_lost.(bi);
      s.Metrics.br_reconvergences <-
        s.Metrics.br_reconvergences + br_reconv.(bi)
    end
  done;
  (* likewise for the per-site memory attribution, keyed by the stable
     "<block>#<k>" access-site id *)
  for si = 0 to nsites - 1 do
    if ms_issues.(si) > 0 then begin
      let s = Metrics.touch_site metrics fctx.sites.(si) in
      s.Metrics.ms_issues <- s.Metrics.ms_issues + ms_issues.(si);
      s.Metrics.ms_accesses <- s.Metrics.ms_accesses + ms_accesses.(si);
      s.Metrics.ms_transactions <-
        s.Metrics.ms_transactions + ms_transactions.(si);
      s.Metrics.ms_l1_hits <- s.Metrics.ms_l1_hits + ms_l1_hits.(si);
      s.Metrics.ms_l1_misses <- s.Metrics.ms_l1_misses + ms_l1_misses.(si);
      s.Metrics.ms_bank_conflicts <-
        s.Metrics.ms_bank_conflicts + ms_bank_conflicts.(si);
      s.Metrics.ms_bank_conflict_cycles <-
        s.Metrics.ms_bank_conflict_cycles + ms_bank_conflict_cycles.(si);
      s.Metrics.ms_stall_cycles <-
        s.Metrics.ms_stall_cycles + ms_stall_cycles.(si);
      s.Metrics.ms_cycles <- s.Metrics.ms_cycles + ms_cycles.(si)
    end
  done;
  metrics
