(** Affine abstraction of i32 values for the race checker.

    Every i32 value is abstracted as [c*tid + m*sym + k] where [tid] is
    the thread index within the block, [sym] is a designated {e uniform}
    SSA value (same for all threads of the block at any given moment —
    a kernel parameter, [block.idx], a uniform loop counter, ...) and
    [c], [m], [k] are integer constants; values that fit no such form
    are [Top].  The issue's three-way classification falls out as
    [c = 0] (uniform), [c = 1, m = 0] (tid + offset) and [Top]
    (unknown), but keeping general coefficients costs nothing and lets
    the checker reason about strided layouts like [tid*L + e].

    Uniformity is imported from {!Darm_analysis.Divergence}: any
    instruction the divergence analysis proves uniform but that fits no
    structural affine rule becomes its own symbol ([m = 1, sym = self]),
    so e.g. [n / 2] for a parameter [n] still compares equal to itself
    across threads.

    The abstraction assumes indexes do not wrap around the i32 range
    (the usual [nsw]-style assumption for address arithmetic). *)

open Darm_ir

type form = {
  c : int;  (** coefficient of [thread.idx] *)
  m : int;  (** coefficient of [sym]; 0 iff [sym = None] *)
  sym : Ssa.value option;  (** a uniform SSA value, compared with
                               {!Ssa.value_equal} *)
  k : int;  (** constant offset *)
}

type av = Form of form | Top

type t

val compute : Darm_analysis.Divergence.t -> Ssa.func -> t

(** Abstract value of any SSA value.  Constants are exact; instructions
    come from the fixpoint; non-i32 values (and [Undef]) are [Top]. *)
val value_av : t -> Ssa.value -> av

val const : int -> av

(** [Top]-absorbing addition; fails to [Top] when the two operands
    carry distinct symbols (the sum [s1 + s2] is not representable). *)
val av_add : av -> av -> av

val equal_av : av -> av -> bool

val to_string : av -> string
