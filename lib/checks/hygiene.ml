(** IR hygiene lints.  See the interface for the rule list. *)

open Darm_ir
open Darm_ir.Ssa
module IntSet = Set.Make (Int)

let id_undef_operand = "undef-operand"
let id_undef_trap = "undef-trap-hazard"
let id_alloc_outside_entry = "alloc-shared-outside-entry"
let id_addr_not_pointer = "memop-addr-not-pointer"
let id_addrspace_mismatch = "addrspace-mismatch"

let ptr_space (ty : Types.ty) : Types.addrspace option =
  match ty with Types.Ptr s -> Some s | _ -> None

let check (f : func) : Diag.t list =
  let diags = ref [] in
  let add ~id ~severity b i msg =
    diags := Diag.make ~id ~severity ~func:f ~block:b ~instr:i msg :: !diags
  in
  let entry = entry_block f in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          let is_undef k =
            Array.length i.operands > k
            && match i.operands.(k) with Undef _ -> true | _ -> false
          in
          (* undef hazards *)
          let trap_positions =
            match i.op with
            | Op.Load -> [ (0, "load address") ]
            | Op.Store -> [ (1, "store address") ]
            | Op.Condbr -> [ (0, "branch condition") ]
            | Op.Ibin (Op.Sdiv | Op.Srem) -> [ (1, "divisor") ]
            | _ -> []
          in
          let trapped = ref IntSet.empty in
          List.iter
            (fun (k, what) ->
              if is_undef k then begin
                trapped := IntSet.add k !trapped;
                add ~id:id_undef_trap ~severity:Diag.Error b i
                  (Printf.sprintf "undef used as %s: the simulator traps here"
                     what)
              end)
            trap_positions;
          (match i.op with
          | Op.Phi | Op.Select -> ()
          | _ ->
              Array.iteri
                (fun k v ->
                  match v with
                  | Undef _ when not (IntSet.mem k !trapped) ->
                      add ~id:id_undef_operand ~severity:Diag.Warning b i
                        (Printf.sprintf
                           "undef operand %d of %s: result is poison" k
                           (Op.to_string i.op))
                  | _ -> ())
                i.operands);
          (* shared allocation placement *)
          (match i.op with
          | Op.Alloc_shared _ when b.bid <> entry.bid ->
              add ~id:id_alloc_outside_entry ~severity:Diag.Error b i
                "alloc.shared outside the entry block: shared memory must \
                 be allocated unconditionally"
          | _ -> ());
          (* memory-op address sanity *)
          (match i.op with
          | Op.Load when Array.length i.operands = 1 ->
              if not (Types.is_pointer (value_ty i.operands.(0))) then
                add ~id:id_addr_not_pointer ~severity:Diag.Error b i
                  "load through a non-pointer value"
          | Op.Store when Array.length i.operands = 2 ->
              if not (Types.is_pointer (value_ty i.operands.(1))) then
                add ~id:id_addr_not_pointer ~severity:Diag.Error b i
                  "store through a non-pointer value"
          | _ -> ());
          (* address-space flow *)
          (match i.op with
          | Op.Gep when Array.length i.operands = 2 -> (
              match ptr_space (value_ty i.operands.(0)), ptr_space i.ty with
              | Some s0, Some s1 when not (Types.addrspace_equal s0 s1) ->
                  add ~id:id_addrspace_mismatch ~severity:Diag.Error b i
                    (Printf.sprintf
                       "gep changes address space (%s base, %s result)"
                       (Types.addrspace_to_string s0)
                       (Types.addrspace_to_string s1))
              | _ -> ())
          | Op.Addrspace_cast -> (
              match ptr_space i.ty with
              | Some Types.Flat | None -> ()
              | Some s ->
                  add ~id:id_addrspace_mismatch ~severity:Diag.Error b i
                    (Printf.sprintf
                       "addrspace.cast result must be flat, got %s"
                       (Types.addrspace_to_string s)))
          | Op.Phi | Op.Select -> (
              match ptr_space i.ty with
              | Some ((Types.Shared | Types.Global) as rs) ->
                  let check_val v =
                    match ptr_space (value_ty v) with
                    | Some s when not (Types.addrspace_equal s rs) ->
                        add ~id:id_addrspace_mismatch ~severity:Diag.Error b i
                          (Printf.sprintf
                             "%s narrows a %s pointer into address space %s"
                             (Op.to_string i.op)
                             (Types.addrspace_to_string s)
                             (Types.addrspace_to_string rs))
                    | _ -> ()
                  in
                  let vals =
                    match i.op with
                    | Op.Select when Array.length i.operands = 3 ->
                        [ i.operands.(1); i.operands.(2) ]
                    | Op.Phi -> Array.to_list i.operands
                    | _ -> []
                  in
                  List.iter check_val vals
              | _ -> ())
          | _ -> ()))
        b.instrs)
    f.blocks_list;
  List.rev !diags
