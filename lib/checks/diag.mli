(** Structured diagnostics shared by every checker.

    A diagnostic carries a stable machine-readable [id] (the contract of
    the CI gate and the translation-validation hook — see
    doc/static-analysis.md for the full catalogue), a severity, a
    source location (kernel, block, instruction) and a human-readable
    explanation.  Diagnostics serialize deterministically to JSON via
    {!Darm_obs.Json}, so two runs over the same IR produce identical
    bytes. *)

type severity = Error | Warning | Info

type t = {
  id : string;  (** stable machine-readable identifier, e.g.
                    ["barrier-divergence"], ["shared-race-ww"] *)
  severity : severity;
  func_name : string;
  block : string option;  (** name of the block containing the finding *)
  instr_id : int option;  (** SSA id of the offending instruction *)
  message : string;       (** human-readable explanation *)
}

val make :
  id:string ->
  severity:severity ->
  func:Darm_ir.Ssa.func ->
  ?block:Darm_ir.Ssa.block ->
  ?instr:Darm_ir.Ssa.instr ->
  string ->
  t

val severity_to_string : severity -> string

(** [Error] sorts before [Warning] before [Info]; ties break on id,
    then block name, then instruction id — a total, deterministic
    order. *)
val compare : t -> t -> int

val is_error : t -> bool

(** ["error[shared-race-ww] @kern block if.then: ..."] *)
val to_string : t -> string

(** Object with fields [id], [severity], [kernel], [block], [instr],
    [message] in that order (deterministic serialization). *)
val to_json : t -> Darm_obs.Json.t
