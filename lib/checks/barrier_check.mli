(** Barrier-divergence checker.

    A [Syncthreads] must be reached by {e all} threads of a block or by
    none: on real GPUs a barrier executed under a divergent branch
    deadlocks or desynchronizes the block (CUDA calls this undefined
    behaviour), and in our SIMT simulator a warp parked at a barrier
    that its siblings never reach hangs the launch.

    The analysis is a forward dataflow of {e open divergent branches}: a
    block ending in a divergent conditional branch (per
    {!Darm_analysis.Divergence}) opens itself; the open entry closes at
    the entry of the branch block's immediate post-dominator — the
    reconvergence point, where every thread is guaranteed present
    again.  A branch whose immediate post-dominator is the virtual exit
    never closes, which is exactly the conservative answer: there is no
    real block where its threads provably rejoin.  Loops with
    thread-dependent trip counts keep their header's branch open
    throughout the body, so barriers inside such loops (temporal
    divergence) are flagged too.

    Every [Syncthreads] whose block has a non-empty open set yields an
    [Error] diagnostic with id [barrier-divergence]. *)

open Darm_ir

type t

(** [dvg] / [pdt] (when supplied) must be current for [f]; they save
    recomputing the divergence analysis and the post-dominator tree —
    e.g. from a {!Darm_analysis.Manager}. *)
val analyze :
  ?dvg:Darm_analysis.Divergence.t ->
  ?pdt:Darm_analysis.Domtree.t ->
  Ssa.func ->
  t

val diags : t -> Diag.t list

(** Divergent-branch blocks still open at the entry of [b] (after
    reconvergence closing), as block names; used by {!Race_check} to
    tell which accesses execute under divergence.  Empty for blocks
    unreachable from the entry. *)
val open_in : t -> Ssa.block -> Ssa.block list

(** [analyze] + [diags]. *)
val check : Ssa.func -> Diag.t list

val id_barrier_divergence : string
