(** Affine abstraction of i32 values ([c*tid + m*sym + k]) for the race
    checker.  See the interface for the domain description. *)

open Darm_ir
open Darm_ir.Ssa
module Divergence = Darm_analysis.Divergence

type form = { c : int; m : int; sym : Ssa.value option; k : int }
type av = Form of form | Top

(* normalization invariant: m = 0 <-> sym = None *)
let mk_form ~c ~m ~sym ~k : av =
  if m = 0 then Form { c; m = 0; sym = None; k }
  else Form { c; m; sym; k }

let const (k : int) : av = Form { c = 0; m = 0; sym = None; k }

let sym_compatible (a : form) (b : form) : bool =
  match a.sym, b.sym with
  | None, _ | _, None -> true
  | Some x, Some y -> value_equal x y

let combined_sym (a : form) (b : form) : Ssa.value option =
  match a.sym with Some _ -> a.sym | None -> b.sym

let av_add (x : av) (y : av) : av =
  match x, y with
  | Top, _ | _, Top -> Top
  | Form a, Form b ->
      if sym_compatible a b then
        mk_form ~c:(a.c + b.c) ~m:(a.m + b.m) ~sym:(combined_sym a b)
          ~k:(a.k + b.k)
      else Top

let av_neg (x : av) : av =
  match x with
  | Top -> Top
  | Form a -> mk_form ~c:(-a.c) ~m:(-a.m) ~sym:a.sym ~k:(-a.k)

let av_scale (n : int) (x : av) : av =
  match x with
  | Top -> Top
  | Form a -> mk_form ~c:(a.c * n) ~m:(a.m * n) ~sym:(if n = 0 then None else a.sym) ~k:(a.k * n)

let equal_av (x : av) (y : av) : bool =
  match x, y with
  | Top, Top -> true
  | Form a, Form b ->
      a.c = b.c && a.m = b.m && a.k = b.k
      && (match a.sym, b.sym with
         | None, None -> true
         | Some u, Some v -> value_equal u v
         | _ -> false)
  | _ -> false

let to_string (x : av) : string =
  match x with
  | Top -> "unknown"
  | Form { c; m; sym = _; k } ->
      let parts = ref [] in
      if k <> 0 || (c = 0 && m = 0) then parts := [ string_of_int k ];
      if m <> 0 then parts := Printf.sprintf "%d*u" m :: !parts;
      if c <> 0 then parts := Printf.sprintf "%d*tid" c :: !parts;
      String.concat " + " !parts

type t = {
  table : (int, av) Hashtbl.t;  (** instr id -> av; absent = bottom *)
}

let value_av (t : t) (v : Ssa.value) : av =
  match v with
  | Int n -> const n
  | Bool _ | Float _ | Undef _ -> Top
  | Param p ->
      if Types.equal p.pty Types.I32 then
        Form { c = 0; m = 1; sym = Some v; k = 0 }
      else Top
  | Instr i -> (
      match Hashtbl.find_opt t.table i.id with Some a -> a | None -> Top)

let compute (dvg : Divergence.t) (f : func) : t =
  let table : (int, av) Hashtbl.t = Hashtbl.create 64 in
  (* during the fixpoint, absence = bottom (not yet known) *)
  let lookup v =
    match v with
    | Int n -> Some (const n)
    | Bool _ | Float _ | Undef _ -> Some Top
    | Param p ->
        Some
          (if Types.equal p.pty Types.I32 then
             Form { c = 0; m = 1; sym = Some v; k = 0 }
           else Top)
    | Instr i -> Hashtbl.find_opt table i.id
  in
  (* a value with no structural form: its own uniform symbol when the
     divergence analysis proves it uniform, Top otherwise *)
  let fallback (i : instr) : av =
    if
      Types.equal i.ty Types.I32
      && not (Divergence.is_divergent_instr dvg i)
    then Form { c = 0; m = 1; sym = Some (Instr i); k = 0 }
    else Top
  in
  let structural (i : instr) : av option =
    (* [None] = some operand still bottom, wait for the next round *)
    let bin k =
      match lookup i.operands.(0), lookup i.operands.(1) with
      | Some a, Some b -> Some (k a b)
      | _ -> None
    in
    match i.op with
    | Op.Thread_idx -> Some (Form { c = 1; m = 0; sym = None; k = 0 })
    | Op.Ibin Op.Add -> bin av_add
    | Op.Ibin Op.Sub -> bin (fun a b -> av_add a (av_neg b))
    | Op.Ibin Op.Mul ->
        bin (fun a b ->
            match a, b with
            | Form { c = 0; m = 0; k = n; _ }, x
            | x, Form { c = 0; m = 0; k = n; _ } ->
                av_scale n x
            | _ -> Top)
    | Op.Ibin Op.Shl ->
        bin (fun a b ->
            match b with
            | Form { c = 0; m = 0; k = n; _ } when n >= 0 && n <= 30 ->
                av_scale (1 lsl n) a
            | _ -> Top)
    | Op.Select -> (
        match lookup i.operands.(1), lookup i.operands.(2) with
        | Some a, Some b -> Some (if equal_av a b then a else Top)
        | _ -> None)
    | Op.Phi ->
        (* join over the known incomings; bottom incomings (back edges
           not yet evaluated) are optimistically ignored *)
        let known =
          Array.to_list i.operands |> List.filter_map lookup
        in
        (match known with
        | [] -> None
        | x :: rest ->
            Some
              (List.fold_left
                 (fun acc y -> if equal_av acc y then acc else Top)
                 x rest))
    | _ -> Some Top
  in
  let changed = ref true in
  while !changed do
    changed := false;
    iter_instrs f (fun i ->
        if not (Types.equal i.ty Types.Void) then begin
          let next =
            match structural i with
            | None -> None
            | Some Top -> Some (fallback i)
            | Some av -> Some av
          in
          match next with
          | None -> ()
          | Some av ->
              let old = Hashtbl.find_opt table i.id in
              let keep =
                match old with
                | Some o when equal_av o av -> true
                (* monotone: never climb back from Top *)
                | Some Top -> true
                | _ -> false
              in
              if not keep then begin
                Hashtbl.replace table i.id av;
                changed := true
              end
        end)
  done;
  { table }
