(** Barrier-divergence checker: forward dataflow of open divergent
    branches, closed at the branch's immediate post-dominator. *)

open Darm_ir
open Darm_ir.Ssa
module Divergence = Darm_analysis.Divergence
module Domtree = Darm_analysis.Domtree
module Cfg = Darm_analysis.Cfg
module IntSet = Set.Make (Int)

let id_barrier_divergence = "barrier-divergence"

module Solver = Dataflow.Forward (struct
  type t = IntSet.t

  let equal = IntSet.equal
  let join = IntSet.union
end)

type t = {
  result : Solver.result;
  block_of_id : (int, block) Hashtbl.t;
  pdt : Domtree.t;
  diags : Diag.t list;
}

(* open branches surviving into [b]: a branch block [c] reconverges —
   and its entry is removed — exactly when [b] is [c]'s immediate
   post-dominator.  [idom pdt c = None] means [c] reconverges only at
   the virtual exit, i.e. never in a real block. *)
let close_at (block_of_id : (int, block) Hashtbl.t) (pdt : Domtree.t)
    (b : block) (fact : IntSet.t) : IntSet.t =
  IntSet.filter
    (fun cid ->
      match Hashtbl.find_opt block_of_id cid with
      | None -> true
      | Some c -> (
          match Domtree.idom pdt c with
          | Some p -> p.bid <> b.bid
          | None -> true))
    fact

let analyze ?dvg ?pdt (f : func) : t =
  let dvg = match dvg with Some d -> d | None -> Divergence.compute f in
  let pdt = match pdt with Some p -> p | None -> Domtree.compute_post f in
  let block_of_id = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_of_id b.bid b) f.blocks_list;
  let transfer (b : block) (fact : IntSet.t) : IntSet.t =
    let fact = close_at block_of_id pdt b fact in
    if Divergence.is_divergent_branch dvg b then IntSet.add b.bid fact
    else fact
  in
  let result =
    Solver.solve ~entry:IntSet.empty ~init:IntSet.empty ~transfer f
  in
  let diags = ref [] in
  List.iter
    (fun b ->
      let open_set =
        close_at block_of_id pdt b (Solver.block_in result b)
      in
      if not (IntSet.is_empty open_set) then
        List.iter
          (fun i ->
            if i.op = Op.Syncthreads then begin
              let culprits =
                IntSet.elements open_set
                |> List.filter_map (Hashtbl.find_opt block_of_id)
                |> List.map (fun c -> c.bname)
                |> String.concat ", "
              in
              diags :=
                Diag.make ~id:id_barrier_divergence ~severity:Diag.Error
                  ~func:f ~block:b ~instr:i
                  (Printf.sprintf
                     "syncthreads is control-dependent on divergent \
                      branch(es) at %s; not all threads of the block \
                      are guaranteed to reach it"
                     culprits)
                :: !diags
            end)
          b.instrs)
    (Cfg.reachable_blocks f);
  { result; block_of_id; pdt; diags = List.rev !diags }

let diags (t : t) : Diag.t list = t.diags

let open_in (t : t) (b : block) : block list =
  close_at t.block_of_id t.pdt b (Solver.block_in t.result b)
  |> IntSet.elements
  |> List.filter_map (Hashtbl.find_opt t.block_of_id)

let check (f : func) : Diag.t list = diags (analyze f)
