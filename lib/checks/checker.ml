(** Checker orchestration.  See the interface for the pipeline. *)

open Darm_ir
module J = Darm_obs.Json

let id_invalid_ir = "invalid-ir"

type report = {
  kernel : string;
  diags : Diag.t list;
  verdict : Race_check.verdict;
}

let check_func ?facts ?dvg (f : Ssa.func) : report =
  (match facts with
  | Some m when not (Darm_analysis.Manager.func m == f) ->
      invalid_arg "Checker.check_func: facts manager is for another function"
  | _ -> ());
  match Verify.run f with
  | _ :: _ as errs ->
      {
        kernel = f.Ssa.fname;
        diags =
          List.map
            (fun (e : Verify.error) ->
              Diag.make ~id:id_invalid_ir ~severity:Diag.Error ~func:f
                e.Verify.msg)
            errs;
        verdict = Race_check.Unknown;
      }
  | [] ->
      let dvg =
        match dvg, facts with
        | Some d, _ -> d
        | None, Some m -> Darm_analysis.Manager.divergence m
        | None, None -> Darm_analysis.Divergence.compute f
      in
      let pdt = Option.map Darm_analysis.Manager.postdomtree facts in
      let dt = Option.map Darm_analysis.Manager.domtree facts in
      let preds = Option.map Darm_analysis.Manager.preds facts in
      (* one barrier-divergence run feeds both its own diagnostics and
         the race checker (which previously recomputed it) *)
      let bdiv = Barrier_check.analyze ~dvg ?pdt f in
      let race = Race_check.analyze ~dvg ?dt ?preds ~bdiv f in
      let hygiene = Hygiene.check f in
      let diags =
        List.sort Diag.compare
          (Barrier_check.diags bdiv @ Race_check.diags race @ hygiene)
      in
      { kernel = f.Ssa.fname; diags; verdict = Race_check.verdict race }

let errors (r : report) : Diag.t list = List.filter Diag.is_error r.diags

let warnings (r : report) : Diag.t list =
  List.filter (fun d -> d.Diag.severity = Diag.Warning) r.diags

let has_errors (r : report) : bool = errors r <> []

(* multiset of error ids *)
let error_counts (r : report) : (string, int) Hashtbl.t =
  let t = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let id = d.Diag.id in
      Hashtbl.replace t id (1 + Option.value ~default:0 (Hashtbl.find_opt t id)))
    (errors r);
  t

let new_errors ~(before : report) ~(after : report) : Diag.t list =
  let old = error_counts before in
  let taken = Hashtbl.create 8 in
  List.filter
    (fun d ->
      let id = d.Diag.id in
      let budget = Option.value ~default:0 (Hashtbl.find_opt old id) in
      let used = Option.value ~default:0 (Hashtbl.find_opt taken id) in
      Hashtbl.replace taken id (used + 1);
      used >= budget)
    (errors after)

let report_to_string (r : report) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "@%s: %d error(s), %d warning(s), races: %s\n" r.kernel
       (List.length (errors r))
       (List.length (warnings r))
       (Race_check.verdict_to_string r.verdict));
  List.iter
    (fun d -> Buffer.add_string buf ("  " ^ Diag.to_string d ^ "\n"))
    r.diags;
  Buffer.contents buf

(* "schema" is the convention-unified key (doc/schemas.md); "format"
   predates it and stays as a deprecated alias until darm-check-v2 *)
let report_to_json (r : report) : J.t =
  J.Obj
    [
      ("schema", J.Str "darm-check-v1");
      ("format", J.Str "darm-check-v1");
      ("kernel", J.Str r.kernel);
      ("verdict", J.Str (Race_check.verdict_to_string r.verdict));
      ("errors", J.Int (List.length (errors r)));
      ("warnings", J.Int (List.length (warnings r)));
      ("diagnostics", J.List (List.map Diag.to_json r.diags));
    ]
