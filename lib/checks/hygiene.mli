(** IR hygiene lints: cheap structural checks that catch kernels (or
    transformation bugs) the type-level verifier accepts but that trap,
    mis-simulate, or read poison at run time.

    - [undef-operand] ({e warning}): an [Undef] used directly as an
      operand outside [phi]/[select].  Melding legitimately introduces
      undefs into phi incomings and select arms for values that only
      exist on one path, so those positions are exempt; anywhere else
      an undef operand means the result is poison.
    - [undef-trap-hazard] ({e error}): an [Undef] in a position where
      the simulator traps — a load/store address, a [condbr] condition,
      or the divisor of [sdiv]/[srem].
    - [alloc-shared-outside-entry] ({e error}): [alloc.shared] outside
      the entry block; allocation must be unconditional and uniform.
    - [memop-addr-not-pointer] ({e error}): load/store through a
      non-pointer value.
    - [addrspace-mismatch] ({e error}): address-space-violating
      pointer flow — a [gep] that changes its base's space, an
      [addrspace.cast] whose result is not flat, or a [phi]/[select]
      that {e narrows} (a flat incoming into a concrete-space result;
      widening into flat is fine).  Mirrors the {!Darm_ir.Verify}
      address-space rules as diagnostics. *)

open Darm_ir

val check : Ssa.func -> Diag.t list

val id_undef_operand : string
val id_undef_trap : string
val id_alloc_outside_entry : string
val id_addr_not_pointer : string
val id_addrspace_mismatch : string
