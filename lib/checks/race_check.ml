(** Barrier-aware shared-memory race detection.  See the interface for
    the analysis design; in short: addresses become [root + affine
    index], barriers split execution into intervals, and only pairs
    with a concrete distinct-thread witness inside a common interval
    are reported as errors. *)

open Darm_ir
open Darm_ir.Ssa
module Divergence = Darm_analysis.Divergence
module Domtree = Darm_analysis.Domtree
module Cfg = Darm_analysis.Cfg
module IntSet = Set.Make (Int)

let id_race_ww = "shared-race-ww"
let id_race_rw = "shared-race-rw"
let id_race_divergent = "shared-race-divergent"

type verdict = Proved_free | Unknown | Racy

let verdict_to_string = function
  | Proved_free -> "proved-free"
  | Unknown -> "unknown"
  | Racy -> "racy"

(* ------------------------------------------------------------------ *)
(* Address roots                                                       *)

type root = Ralloc of instr | Rparam of param

let root_equal a b =
  match a, b with
  | Ralloc i, Ralloc j -> i.id = j.id
  | Rparam p, Rparam q -> p.pindex = q.pindex
  | _ -> false

let root_is_shared = function
  | Ralloc _ -> true
  | Rparam p -> Types.equal p.pty (Types.Ptr Types.Shared)

(* A root that is definitely NOT shared memory: a global-space pointer
   parameter.  Flat parameters and unresolved addresses may alias
   shared memory. *)
let root_is_global = function
  | Ralloc _ -> false
  | Rparam p -> Types.equal p.pty (Types.Ptr Types.Global)

let root_name = function
  | Ralloc i -> Printf.sprintf "shared array %%%d" i.id
  | Rparam p -> "%" ^ p.pname

(* Resolve an address to [root + affine index] through gep and
   addrspace.cast chains.  Phi/select/undef addresses have no root. *)
let rec resolve_addr (af : Affine.t) (v : value) (idx : Affine.av) :
    (root * Affine.av) option =
  match v with
  | Instr i -> (
      match i.op with
      | Op.Alloc_shared _ -> Some (Ralloc i, idx)
      | Op.Gep ->
          resolve_addr af i.operands.(0)
            (Affine.av_add idx (Affine.value_av af i.operands.(1)))
      | Op.Addrspace_cast -> resolve_addr af i.operands.(0) idx
      | _ -> None)
  | Param p when Types.is_pointer p.pty -> Some (Rparam p, idx)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Barrier intervals                                                   *)

(* Facts are sets of interval markers: the distinguished entry marker
   plus the instr ids of the barriers that may most recently have
   executed.  A barrier wipes the incoming fact — it ends every
   interval that reaches it. *)
let entry_marker = -1

module Solver = Dataflow.Forward (struct
  type t = IntSet.t

  let equal = IntSet.equal
  let join = IntSet.union
end)

let block_transfer (b : block) (fact : IntSet.t) : IntSet.t =
  List.fold_left
    (fun fact i ->
      if i.op = Op.Syncthreads then IntSet.singleton i.id else fact)
    fact b.instrs

(* ------------------------------------------------------------------ *)
(* Accesses                                                            *)

type access = {
  a_instr : instr;
  a_block : block;
  a_write : bool;
  a_root : (root * Affine.av) option;
  a_intervals : IntSet.t;
  a_divergent : bool;  (** executes under an open divergent branch *)
  a_solo : bool;  (** provably executed by at most one thread *)
}

let may_same_interval a b = not (IntSet.disjoint a.a_intervals b.a_intervals)

(* Blocks provably executed by at most one thread: dominated by the
   single-predecessor taken-successor of a [tid-like == uniform]
   branch.  "tid-like vs uniform" generalizes to: both comparison
   operands are affine with distinct tid coefficients, so for any
   fixed value of the uniform symbols at most one thread satisfies
   equality. *)
let solo_block_set ?dt ?preds (af : Affine.t) (f : func) : IntSet.t =
  let dt = match dt with Some d -> d | None -> Domtree.compute f in
  let preds = match preds with Some p -> p | None -> predecessors f in
  let solo = ref IntSet.empty in
  let reachable = Cfg.reachable_blocks f in
  List.iter
    (fun c ->
      match List.rev c.instrs with
      | t :: _ when t.op = Op.Condbr -> (
          match t.operands.(0) with
          | Instr ci -> (
              let taken =
                match ci.op with
                | Op.Icmp Op.Ieq -> Some t.blocks.(0)
                | Op.Icmp Op.Ine -> Some t.blocks.(1)
                | _ -> None
              in
              match taken with
              | Some dest when t.blocks.(0).bid <> t.blocks.(1).bid -> (
                  match
                    ( Affine.value_av af ci.operands.(0),
                      Affine.value_av af ci.operands.(1) )
                  with
                  | Affine.Form a, Affine.Form b when a.Affine.c <> b.Affine.c
                    ->
                      if
                        List.length (preds_of preds dest) = 1
                        && dest.bid <> c.bid
                      then
                        List.iter
                          (fun b2 ->
                            if Domtree.dominates dt dest b2 then
                              solo := IntSet.add b2.bid !solo)
                          reachable
                  | _ -> ())
              | _ -> ())
          | _ -> ())
      | _ -> ())
    reachable;
  !solo

(* ------------------------------------------------------------------ *)
(* Pair reasoning                                                      *)

let syms_cancel (a : Affine.form) (b : Affine.form) : bool =
  a.Affine.m = b.Affine.m
  && (match a.Affine.sym, b.Affine.sym with
     | None, None -> true
     | Some u, Some v -> value_equal u v
     | _ -> false)

(* Concrete witness: distinct threads t, t' in [0, 64) with
   ca*t + ka = cb*t' + kb (symbolic parts must cancel). *)
let witness (a : Affine.form) (b : Affine.form) : (int * int) option =
  if not (syms_cancel a b) then None
  else begin
    let found = ref None in
    for t = 0 to 63 do
      for t' = 0 to 63 do
        if !found = None && t <> t' then
          if (a.Affine.c * t) + a.Affine.k = (b.Affine.c * t') + b.Affine.k
          then found := Some (t, t')
      done
    done;
    !found
  end

(* Sound disjointness for any block size: same stride, and either both
   uniform at distinct offsets, or offsets equal / not stride-aligned. *)
let provably_disjoint (a : Affine.form) (b : Affine.form) : bool =
  syms_cancel a b
  && a.Affine.c = b.Affine.c
  &&
  let c = a.Affine.c and ka = a.Affine.k and kb = b.Affine.k in
  if c = 0 then ka <> kb else ka = kb || (kb - ka) mod c <> 0

(* ------------------------------------------------------------------ *)

type t = { diags : Diag.t list; verdict : verdict }

let diags (t : t) = t.diags
let verdict (t : t) = t.verdict

let has_shared_memory (f : func) : bool =
  List.exists (fun p -> Types.equal p.pty (Types.Ptr Types.Shared)) f.params
  || fold_instrs f
       (fun acc i ->
         acc || match i.op with Op.Alloc_shared _ -> true | _ -> false)
       false

let collect_accesses (af : Affine.t) (bdiv : Barrier_check.t)
    (intervals : Solver.result) (solo : IntSet.t) (f : func) : access list =
  let accesses = ref [] in
  List.iter
    (fun b ->
      let divergent = Barrier_check.open_in bdiv b <> [] in
      let is_solo = IntSet.mem b.bid solo in
      let fact = ref (Solver.block_in intervals b) in
      List.iter
        (fun i ->
          match i.op with
          | Op.Syncthreads -> fact := IntSet.singleton i.id
          | Op.Load | Op.Store ->
              let addr =
                if i.op = Op.Load then i.operands.(0) else i.operands.(1)
              in
              accesses :=
                {
                  a_instr = i;
                  a_block = b;
                  a_write = i.op = Op.Store;
                  a_root = resolve_addr af addr (Affine.const 0);
                  a_intervals = !fact;
                  a_divergent = divergent;
                  a_solo = is_solo;
                }
                :: !accesses
          | _ -> ())
        b.instrs)
    (Cfg.reachable_blocks f);
  List.rev !accesses

let analyze ?dvg ?dt ?preds ?bdiv (f : func) : t =
  let dvg = match dvg with Some d -> d | None -> Divergence.compute f in
  let af = Affine.compute dvg f in
  let bdiv =
    match bdiv with Some b -> b | None -> Barrier_check.analyze ~dvg f
  in
  let intervals =
    Solver.solve
      ~entry:(IntSet.singleton entry_marker)
      ~init:IntSet.empty ~transfer:block_transfer f
  in
  let solo = solo_block_set ?dt ?preds af f in
  let accesses = collect_accesses af bdiv intervals solo f in
  let arr = Array.of_list accesses in
  let n = Array.length arr in
  let diags = ref [] in
  let racy = ref false in
  (* definite races: same known shared root, common interval, concrete
     distinct-thread witness *)
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if
        (a.a_write || b.a_write)
        && may_same_interval a b
      then
        match a.a_root, b.a_root with
        | Some (ra, ia), Some (rb, ib)
          when root_equal ra rb && root_is_shared ra -> (
            match ia, ib with
            | Affine.Form fa, Affine.Form fb -> (
                match witness fa fb with
                | Some (t, t') when not (a.a_solo || b.a_solo) ->
                    let ww = a.a_write && b.a_write in
                    let where =
                      if i = j then
                        Printf.sprintf "instr %d (index %s)" a.a_instr.id
                          (Affine.to_string ia)
                      else
                        Printf.sprintf
                          "instrs %d (index %s, block %s) and %d (index %s, \
                           block %s)"
                          a.a_instr.id (Affine.to_string ia) a.a_block.bname
                          b.a_instr.id (Affine.to_string ib) b.a_block.bname
                    in
                    if a.a_divergent || b.a_divergent then
                      diags :=
                        Diag.make ~id:id_race_divergent ~severity:Diag.Warning
                          ~func:f ~block:a.a_block ~instr:a.a_instr
                          (Printf.sprintf
                             "possible %s race on %s under a divergent \
                              branch: %s; threads %d and %d hit the same \
                              element"
                             (if ww then "write-write" else "read-write")
                             (root_name ra) where t t')
                        :: !diags
                    else begin
                      racy := true;
                      diags :=
                        Diag.make
                          ~id:(if ww then id_race_ww else id_race_rw)
                          ~severity:Diag.Error ~func:f ~block:a.a_block
                          ~instr:a.a_instr
                          (Printf.sprintf
                             "%s race on %s: %s; e.g. threads %d and %d hit \
                              the same element with no barrier in between"
                             (if ww then "write-write" else "read-write")
                             (root_name ra) where t t')
                        :: !diags
                    end
                | _ -> ())
            | _ -> ())
        | _ -> ()
    done
  done;
  (* sound verdict *)
  let verdict =
    if !racy then Racy
    else if List.exists Diag.is_error (Barrier_check.diags bdiv) then Unknown
    else if not (has_shared_memory f) then Proved_free
    else begin
      let possibly_shared a =
        match a.a_root with
        | None -> true
        | Some (r, _) -> not (root_is_global r)
      in
      let shared = List.filter possibly_shared accesses in
      let analyzable a =
        match a.a_root with
        | Some (r, Affine.Form fm) ->
            root_is_shared r && fm.Affine.m = 0 && not a.a_solo
        | _ -> false
      in
      if not (List.for_all analyzable shared) then Unknown
      else begin
        let ok = ref true in
        let sarr = Array.of_list shared in
        for i = 0 to Array.length sarr - 1 do
          for j = i to Array.length sarr - 1 do
            let a = sarr.(i) and b = sarr.(j) in
            if (a.a_write || b.a_write) && may_same_interval a b then
              match a.a_root, b.a_root with
              | Some (ra, Affine.Form fa), Some (rb, Affine.Form fb) ->
                  if root_equal ra rb && not (provably_disjoint fa fb) then
                    ok := false
              | _ -> ok := false
          done
        done;
        if !ok then Proved_free else Unknown
      end
    end
  in
  { diags = List.rev !diags; verdict }

let check (f : func) : Diag.t list = diags (analyze f)
