(** Reusable forward-dataflow framework over {!Darm_analysis.Cfg}.

    A checker instantiates {!Forward} with a join-semilattice domain and
    a per-block transfer function; the solver runs a worklist seeded in
    reverse postorder (the canonical forward iteration order) to a
    fixpoint.  Both users in this library — the reaching-barrier
    interval analysis of {!Race_check} and the open-divergent-branch
    analysis of {!Barrier_check} — are set-based may-analyses, but the
    framework is agnostic: any finite-height domain with a monotone
    transfer terminates.

    Unreachable blocks keep the [init] (bottom) fact and are never
    visited by the transfer function. *)

open Darm_ir

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool

  (** Least upper bound; must be associative, commutative and
      idempotent, with the solver's [init] fact as its identity. *)
  val join : t -> t -> t
end

module Forward (D : DOMAIN) : sig
  type result

  (** [solve ~entry ~init ~transfer f] — [entry] is the fact at the
      function entry, [init] the bottom element assumed for
      not-yet-visited predecessors, [transfer b fact] the fact at the
      end of [b] given the fact at its start. *)
  val solve :
    entry:D.t ->
    init:D.t ->
    transfer:(Ssa.block -> D.t -> D.t) ->
    Ssa.func ->
    result

  (** Fact at block entry (join over predecessor exits); [init] for
      unreachable blocks. *)
  val block_in : result -> Ssa.block -> D.t

  (** Fact at block exit ([transfer] applied to {!block_in}). *)
  val block_out : result -> Ssa.block -> D.t
end
