(** Checker orchestration: run every sanity checker over a kernel and
    produce one structured report.

    Order matters: {!Darm_ir.Verify} runs first, and when it fails the
    dataflow checkers are skipped (their CFG walks assume well-formed
    IR) — the report then carries one [invalid-ir] error per verifier
    complaint.  On well-formed IR the barrier-divergence checker, the
    shared-memory race checker and the hygiene lints all run, their
    diagnostics are merged and sorted (errors first), and the race
    checker's sound verdict is attached.

    {!new_errors} is the translation-validation primitive used by
    {!Darm_core.Pass}: it diffs two reports by {e error id multiset},
    so melding is allowed to move or rephrase a pre-existing diagnostic
    but not to mint a new kind of error or another instance of an
    existing kind. *)

open Darm_ir

type report = {
  kernel : string;
  diags : Diag.t list;  (** sorted: errors first, then by id/location *)
  verdict : Race_check.verdict;
}

(** [facts] (when supplied) must be a {!Darm_analysis.Manager} for [f]
    that is current (every edit noted); the checkers then draw the
    divergence analysis, both dominator trees and the predecessor table
    from its cache instead of recomputing them per checker.  [dvg]
    overrides the divergence result regardless.  Independent of
    [facts], the barrier-divergence analysis runs once and is shared
    with the race checker.  Raises [Invalid_argument] when [facts]
    manages a different function. *)
val check_func :
  ?facts:Darm_analysis.Manager.t ->
  ?dvg:Darm_analysis.Divergence.t ->
  Ssa.func ->
  report

val has_errors : report -> bool
val errors : report -> Diag.t list
val warnings : report -> Diag.t list

(** Error diagnostics of [after] whose id occurs more often than in
    [before] (one representative per excess occurrence); empty when
    [after] is no worse than [before]. *)
val new_errors : before:report -> after:report -> Diag.t list

val report_to_string : report -> string

(** Stable machine-readable form; the [schema] field is
    ["darm-check-v1"] ([format] is a deprecated alias kept until
    [darm-check-v2] — see doc/schemas.md). *)
val report_to_json : report -> Darm_obs.Json.t

val id_invalid_ir : string
