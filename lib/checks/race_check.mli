(** Barrier-aware shared-memory race detection.

    The checker abstract-interprets every load/store address as [root +
    affine index] ({!Affine}), where a root is either an [Alloc_shared]
    instruction or a pointer parameter, resolved through [Gep] /
    [Addrspace_cast] chains.  Accesses are then split into {e barrier
    intervals} — a forward dataflow of reaching barriers, where each
    [Syncthreads] starts a fresh interval — and two accesses may race
    only when their interval sets intersect.  (Interval intersection is
    a sound "may happen between the same pair of barriers" test
    provided barriers are uniform; {!Barrier_check} reports the cases
    where they are not.)

    {b Errors are definite races only}: both addresses must resolve to
    the same shared root with affine indexes whose symbolic parts
    cancel, and a concrete witness pair of distinct threads [t <> t']
    in [0, 64) must hit the same element within a common barrier
    interval.  Definite races under a divergent branch are demoted to a
    [Warning] ([shared-race-divergent]) — lockstep execution can mask
    them — and accesses behind a provably single-thread guard
    ([tid == uniform]) are not reported at all.  Un-analyzable indexes
    (xor'd, masked, loaded) therefore never produce errors; they only
    degrade the {!verdict}.

    The {!verdict} is the dual, sound side: {!Proved_free} is only
    returned when every access that could possibly touch shared memory
    has a known root and a symbol-free affine index, and every
    write-involved pair in a common interval is provably disjoint {e
    for every block size} — this is what the fuzz harness
    cross-validates against the simulator. *)

open Darm_ir

type verdict =
  | Proved_free  (** no shared-memory race for any block size *)
  | Unknown  (** some access was not analyzable *)
  | Racy  (** a definite race was found (an [Error] was emitted) *)

type t

(** [dvg], [dt], [preds] and [bdiv] (when supplied) must be current for
    [f]; they save recomputing the divergence analysis, the dominator
    tree, the predecessor table and the barrier-divergence analysis —
    e.g. from a {!Darm_analysis.Manager} and a {!Checker}-level shared
    {!Barrier_check.analyze} run. *)
val analyze :
  ?dvg:Darm_analysis.Divergence.t ->
  ?dt:Darm_analysis.Domtree.t ->
  ?preds:(int, Ssa.block list) Hashtbl.t ->
  ?bdiv:Barrier_check.t ->
  Ssa.func ->
  t

val diags : t -> Diag.t list
val verdict : t -> verdict

val check : Ssa.func -> Diag.t list

val verdict_to_string : verdict -> string

val id_race_ww : string
val id_race_rw : string
val id_race_divergent : string
