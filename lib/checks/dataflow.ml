(** Reusable forward-dataflow framework over {!Darm_analysis.Cfg}.

    Worklist solver: blocks are processed in reverse postorder and
    re-queued whenever a predecessor's exit fact changes.  Termination
    needs a finite-height domain and a monotone transfer — true of both
    set-union users in this library. *)

open Darm_ir.Ssa
module Cfg = Darm_analysis.Cfg

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Forward (D : DOMAIN) = struct
  type result = {
    in_facts : (int, D.t) Hashtbl.t;  (** block id -> entry fact *)
    out_facts : (int, D.t) Hashtbl.t;
    init : D.t;
  }

  let solve ~(entry : D.t) ~(init : D.t)
      ~(transfer : block -> D.t -> D.t) (f : func) : result =
    let rpo = Cfg.reverse_postorder f in
    let order = Hashtbl.create 32 in
    List.iteri (fun k b -> Hashtbl.replace order b.bid k) rpo;
    let in_facts = Hashtbl.create 32 in
    let out_facts = Hashtbl.create 32 in
    let entry_bid = (entry_block f).bid in
    Hashtbl.replace in_facts entry_bid entry;
    (* worklist keyed by RPO position, deterministic pop order *)
    let module IS = Set.Make (Int) in
    let work = ref IS.empty in
    let by_pos = Hashtbl.create 32 in
    List.iteri (fun k b -> Hashtbl.replace by_pos k b) rpo;
    List.iteri (fun k _ -> work := IS.add k !work) rpo;
    while not (IS.is_empty !work) do
      let pos = IS.min_elt !work in
      work := IS.remove pos !work;
      let b = Hashtbl.find by_pos pos in
      let in_fact =
        match Hashtbl.find_opt in_facts b.bid with
        | Some x -> x
        | None -> init
      in
      let out_fact = transfer b in_fact in
      let changed =
        match Hashtbl.find_opt out_facts b.bid with
        | Some old -> not (D.equal old out_fact)
        | None -> true
      in
      if changed then begin
        Hashtbl.replace out_facts b.bid out_fact;
        List.iter
          (fun s ->
            match Hashtbl.find_opt order s.bid with
            | None -> ()  (* successor unreachable in RPO: impossible *)
            | Some spos ->
                let cur =
                  match Hashtbl.find_opt in_facts s.bid with
                  | Some x -> x
                  | None -> init
                in
                let joined = D.join cur out_fact in
                if not (D.equal cur joined) then begin
                  Hashtbl.replace in_facts s.bid joined;
                  work := IS.add spos !work
                end)
          (successors b)
      end
    done;
    { in_facts; out_facts; init }

  let block_in (r : result) (b : block) : D.t =
    match Hashtbl.find_opt r.in_facts b.bid with
    | Some x -> x
    | None -> r.init

  let block_out (r : result) (b : block) : D.t =
    match Hashtbl.find_opt r.out_facts b.bid with
    | Some x -> x
    | None -> r.init
end
