(** Structured diagnostics shared by every checker. *)

type severity = Error | Warning | Info

type t = {
  id : string;
  severity : severity;
  func_name : string;
  block : string option;
  instr_id : int option;
  message : string;
}

let make ~id ~severity ~(func : Darm_ir.Ssa.func) ?block ?instr message : t =
  {
    id;
    severity;
    func_name = func.Darm_ir.Ssa.fname;
    block = Option.map (fun b -> b.Darm_ir.Ssa.bname) block;
    instr_id = Option.map (fun i -> i.Darm_ir.Ssa.id) instr;
    message;
  }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare (a : t) (b : t) : int =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.id b.id in
    if c <> 0 then c
    else
      let c =
        Option.compare String.compare a.block b.block
      in
      if c <> 0 then c
      else Option.compare Int.compare a.instr_id b.instr_id

let is_error (d : t) = d.severity = Error

let to_string (d : t) : string =
  Printf.sprintf "%s[%s] @%s%s: %s"
    (severity_to_string d.severity)
    d.id d.func_name
    (match d.block with Some b -> " block " ^ b | None -> "")
    d.message

let to_json (d : t) : Darm_obs.Json.t =
  let module J = Darm_obs.Json in
  J.Obj
    [
      ("id", J.Str d.id);
      ("severity", J.Str (severity_to_string d.severity));
      ("kernel", J.Str d.func_name);
      ("block", match d.block with Some b -> J.Str b | None -> J.Null);
      ("instr", match d.instr_id with Some i -> J.Int i | None -> J.Null);
      ("message", J.Str d.message);
    ]
