(** Periodic on-disk metrics snapshots for live batch observability.

    A long batch run is opaque between its start and its final summary
    unless something inside it publishes state.  A snapshot is that
    publication: the run's {!Metrics_registry} rendered to {e two}
    sibling files — Prometheus text exposition ([<base>.prom], for a
    node-exporter-style textfile scraper) and a [darm-metrics-v1] JSON
    document ([<base>.json], for [darm_opt top] and scripts) — each
    written atomically ({!Fsio.write_atomic}: temp file + rename, the
    JSON additionally re-read and schema-validated before the rename),
    so an external reader polling mid-run only ever observes a
    complete, parseable file, never a torn one.

    The two renderings carry identical information; the writer
    overwrites both in place on every cadence tick. *)

(** [<base>.prom] / [<base>.json]. *)
val prom_path : string -> string

val json_path : string -> string

(** Atomically (re)write both renderings of [fams] at [base].  Raises
    [Sys_error] when the directory is not writable and [Failure] if the
    just-written JSON fails to re-parse (which would mean the emitter
    itself is broken — the torn-file case is excluded by construction). *)
val write : base:string -> Metrics_registry.family list -> unit

(** Parse a snapshot's JSON rendering back ([Error] when missing,
    unreadable or invalid — including the mid-write case, which cannot
    occur for files written by {!write} but can for impostors). *)
val read_json : path:string -> (Metrics_registry.family list, string) result
