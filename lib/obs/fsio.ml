(* Binary, atomic file output.  See fsio.mli. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_atomic ?validate ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    (match validate with
    | None -> ()
    | Some check -> check (read_file tmp));
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (try Sys.remove tmp with Sys_error _ -> ());
      Printexc.raise_with_backtrace e bt
