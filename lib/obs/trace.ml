(* Structured tracing buffers.  See trace.mli for the event model, the
   virtual-clock timestamping and the determinism contract. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type phase = B | E | I | C

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts : int;
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * value) list;
}

(* growable event array; events are append-only *)
type t = {
  mutable buf : event array;
  mutable len : int;
  mutable clock : int;  (** virtual time of the next default-ts event *)
}

let dummy_event =
  { ev_name = ""; ev_cat = ""; ev_ph = I; ev_ts = 0; ev_pid = 0; ev_tid = 0;
    ev_args = [] }

let create () = { buf = Array.make 64 dummy_event; len = 0; clock = 0 }

let length t = t.len

let events t = Array.to_list (Array.sub t.buf 0 t.len)

let value_to_json : value -> Json.t = function
  | Str s -> Json.Str s
  | Int n -> Json.Int n
  | Float x -> Json.Float x
  | Bool b -> Json.Bool b

let push (t : t) (ev : event) : unit =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) dummy_event in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- ev;
  t.len <- t.len + 1

(* the virtual clock advances by one per event and never runs
   backwards; an explicit ts ahead of it fast-forwards it *)
let stamp (t : t) (ts : int option) : int =
  let now = match ts with Some ts -> max ts t.clock | None -> t.clock in
  t.clock <- now + 1;
  now

let emit (t : t) ~(cat : string) ~(pid : int) ~(tid : int) ?ts
    ~(args : (string * value) list) (ph : phase) (name : string) : unit =
  push t
    {
      ev_name = name;
      ev_cat = cat;
      ev_ph = ph;
      ev_ts = stamp t ts;
      ev_pid = pid;
      ev_tid = tid;
      ev_args = args;
    }

let instant t ?(cat = "") ?(pid = 0) ?(tid = 0) ?ts ?(args = []) name =
  emit t ~cat ~pid ~tid ?ts ~args I name

let begin_span t ?(cat = "") ?(pid = 0) ?(tid = 0) ?ts ?(args = []) name =
  emit t ~cat ~pid ~tid ?ts ~args B name

let end_span t ?(cat = "") ?(pid = 0) ?(tid = 0) ?ts name =
  emit t ~cat ~pid ~tid ?ts ~args:[] E name

let with_span t ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) name f =
  begin_span t ~cat ~pid ~tid ~args name;
  Fun.protect ~finally:(fun () -> end_span t ~cat ~pid ~tid name) f

let counter t ?(cat = "") ?(pid = 0) ?(tid = 0) ?ts name v =
  emit t ~cat ~pid ~tid ?ts ~args:[ ("value", Float v) ] C name

let merge (ts : t list) : t =
  let out = create () in
  List.iter
    (fun t ->
      for i = 0 to t.len - 1 do
        push out t.buf.(i)
      done;
      out.clock <- max out.clock t.clock)
    ts;
  out

let shift_pid (t : t) (delta : int) : unit =
  for i = 0 to t.len - 1 do
    t.buf.(i) <- { t.buf.(i) with ev_pid = t.buf.(i).ev_pid + delta }
  done

(* per-(pid, tid) stacks of open span names *)
let balanced (t : t) : bool =
  let stacks : (int * int, string list) Hashtbl.t = Hashtbl.create 16 in
  let ok = ref true in
  for i = 0 to t.len - 1 do
    let ev = t.buf.(i) in
    let key = (ev.ev_pid, ev.ev_tid) in
    match ev.ev_ph with
    | B ->
        Hashtbl.replace stacks key
          (ev.ev_name :: Option.value ~default:[] (Hashtbl.find_opt stacks key))
    | E -> (
        match Hashtbl.find_opt stacks key with
        | Some (top :: rest) when top = ev.ev_name ->
            Hashtbl.replace stacks key rest
        | _ -> ok := false)
    | I | C -> ()
  done;
  Hashtbl.iter (fun _ stack -> if stack <> [] then ok := false) stacks;
  !ok

let equal (a : t) (b : t) : bool =
  a.len = b.len
  &&
  let same = ref true in
  for i = 0 to a.len - 1 do
    if a.buf.(i) <> b.buf.(i) then same := false
  done;
  !same
