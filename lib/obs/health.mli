(** Per-worker heartbeat tracking and stall detection for batch runs.

    Each pool worker "beats" once per completed spec; a monitor thread
    periodically {!check}s whether any busy worker has gone longer than
    the deadline without progress, flags it stalled (once per stall —
    {!check} returns only {e newly} stalled workers, so the caller can
    journal a single [stalled] event per incident), and the run-level
    {!health} gauge degrades by the stalled fraction.  A later beat
    from a stalled worker recovers it to busy, and health with it.

    {b No clock of its own.}  The module takes [now] from the caller on
    every call, so it lives in the dependency-free [lib/obs] and tests
    can drive the watchdog with a simulated clock — no sleeping.

    {b One caveat} (documented in doc/observability.md): "progress" is
    spec completion, so a worker legitimately crunching one enormous
    spec for longer than the deadline is indistinguishable from a hung
    one and will be flagged until it completes.  The deadline should
    therefore be a generous multiple of the slowest expected spec.

    Thread-safe: beats arrive from pool domains while the monitor
    checks. *)

type t

type state = Idle | Busy | Stalled

(** Workers are indexed [0 .. workers-1]; all start [Idle].
    [deadline_s] must be positive. *)
val create : workers:int -> deadline_s:float -> t

val workers : t -> int

(** Record progress on [worker] at time [now]: bumps its heartbeat
    counter, re-arms its deadline and recovers it from [Stalled] to
    [Busy].  Out-of-range workers are ignored (a pool may legitimately
    be smaller than planned for a short chunk). *)
val beat : t -> worker:int -> now:float -> unit

(** Mark [worker] busy (deadline armed from [now]) — called when a
    chunk is dispatched. *)
val set_busy : t -> worker:int -> now:float -> unit

(** Mark [worker] idle — called between chunks; idle workers are never
    flagged stalled. *)
val set_idle : t -> worker:int -> unit

val state : t -> worker:int -> state

(** Heartbeats observed on [worker] so far. *)
val beats : t -> worker:int -> int

(** Flag every busy worker whose last progress is more than the
    deadline before [now]; returns the {e newly} stalled workers (in
    index order).  Already-stalled workers are not re-reported. *)
val check : t -> now:float -> int list

(** Stall incidents flagged over the whole run (recoveries do not
    decrement). *)
val stalled_total : t -> int

(** [1 - stalled/workers] over the current states: [1.] when nothing
    is stalled, degrading toward [0.] as workers hang. *)
val health : t -> float

(** Gauge encoding for [darm_worker_state]: Idle 0, Busy 1,
    Stalled 2. *)
val state_code : state -> int
