(* Heartbeat/watchdog state for batch runs.  See health.mli. *)

type state = Idle | Busy | Stalled

type worker = {
  mutable w_state : state;
  mutable w_beats : int;
  mutable w_last : float;  (* time of the last observed progress *)
}

type t = {
  h_workers : worker array;
  h_deadline_s : float;
  h_mutex : Mutex.t;
  mutable h_stalled_total : int;
}

let create ~workers ~deadline_s : t =
  if workers < 1 then invalid_arg "Health.create: workers < 1";
  if deadline_s <= 0. then invalid_arg "Health.create: deadline_s <= 0";
  {
    h_workers =
      Array.init workers (fun _ ->
          { w_state = Idle; w_beats = 0; w_last = 0. });
    h_deadline_s = deadline_s;
    h_mutex = Mutex.create ();
    h_stalled_total = 0;
  }

let workers (t : t) : int = Array.length t.h_workers

let locked (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.h_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.h_mutex) f

let in_range (t : t) (w : int) : bool = w >= 0 && w < Array.length t.h_workers

let beat (t : t) ~worker ~now : unit =
  if in_range t worker then
    locked t (fun () ->
        let w = t.h_workers.(worker) in
        w.w_beats <- w.w_beats + 1;
        w.w_last <- now;
        if w.w_state = Stalled then w.w_state <- Busy)

let set_busy (t : t) ~worker ~now : unit =
  if in_range t worker then
    locked t (fun () ->
        let w = t.h_workers.(worker) in
        w.w_state <- Busy;
        w.w_last <- now)

let set_idle (t : t) ~worker : unit =
  if in_range t worker then
    locked t (fun () -> t.h_workers.(worker).w_state <- Idle)

let state (t : t) ~worker : state =
  if in_range t worker then locked t (fun () -> t.h_workers.(worker).w_state)
  else Idle

let beats (t : t) ~worker : int =
  if in_range t worker then locked t (fun () -> t.h_workers.(worker).w_beats)
  else 0

let check (t : t) ~now : int list =
  locked t (fun () ->
      let newly = ref [] in
      Array.iteri
        (fun i w ->
          if w.w_state = Busy && now -. w.w_last > t.h_deadline_s then begin
            w.w_state <- Stalled;
            t.h_stalled_total <- t.h_stalled_total + 1;
            newly := i :: !newly
          end)
        t.h_workers;
      List.rev !newly)

let stalled_total (t : t) : int = locked t (fun () -> t.h_stalled_total)

let health (t : t) : float =
  locked t (fun () ->
      let stalled =
        Array.fold_left
          (fun acc w -> if w.w_state = Stalled then acc + 1 else acc)
          0 t.h_workers
      in
      1. -. (float_of_int stalled /. float_of_int (Array.length t.h_workers)))

let state_code = function Idle -> 0 | Busy -> 1 | Stalled -> 2
