(* Typed metrics registry with deterministic snapshots and JSON /
   Prometheus exposition.  See metrics_registry.mli for the model. *)

type labels = (string * string) list

type kind = Counter | Gauge | Histogram

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* duplicate keys: last binding wins, then sort by key for a canonical
   series identity *)
let normalize_labels (ls : labels) : labels =
  let tbl = Hashtbl.create (List.length ls) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) ls;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* one time series: a (name, labels) cell *)
type cell = {
  mutable c_value : float;  (* counter/gauge value; histogram sum *)
  mutable c_count : int;  (* histogram samples *)
  c_bounds : float array;  (* histogram upper bounds, [||] otherwise *)
  c_bucket_counts : int array;  (* per-bound non-cumulative counts *)
}

type fam = {
  fam_kind : kind;
  mutable fam_help : string;
  fam_cells : (labels, cell) Hashtbl.t;
}

type t = { fams : (string, fam) Hashtbl.t }

let create () : t = { fams = Hashtbl.create 16 }

let default_buckets =
  [ 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000. ]

let family (t : t) (name : string) (kind : kind) : fam =
  match Hashtbl.find_opt t.fams name with
  | Some f ->
      if f.fam_kind <> kind then
        invalid_arg
          (Printf.sprintf
             "Metrics_registry: %S is a %s, used as a %s" name
             (kind_to_string f.fam_kind) (kind_to_string kind));
      f
  | None ->
      let f = { fam_kind = kind; fam_help = ""; fam_cells = Hashtbl.create 4 } in
      Hashtbl.replace t.fams name f;
      f

let cell (f : fam) (labels : labels) (bounds : float array) : cell =
  let labels = normalize_labels labels in
  match Hashtbl.find_opt f.fam_cells labels with
  | Some c -> c
  | None ->
      let c =
        {
          c_value = 0.;
          c_count = 0;
          c_bounds = bounds;
          c_bucket_counts = Array.make (Array.length bounds) 0;
        }
      in
      Hashtbl.replace f.fam_cells labels c;
      c

let inc (t : t) ?(labels = []) ?(by = 1.) (name : string) : unit =
  if by < 0. then
    invalid_arg
      (Printf.sprintf "Metrics_registry.inc: counter %S decremented by %g"
         name by);
  let c = cell (family t name Counter) labels [||] in
  c.c_value <- c.c_value +. by

let set (t : t) ?(labels = []) (name : string) (v : float) : unit =
  let c = cell (family t name Gauge) labels [||] in
  c.c_value <- v

let observe (t : t) ?(labels = []) ?(buckets = default_buckets)
    (name : string) (v : float) : unit =
  let bounds =
    List.sort_uniq compare (List.filter Float.is_finite buckets)
    |> Array.of_list
  in
  let c = cell (family t name Histogram) labels bounds in
  c.c_value <- c.c_value +. v;
  c.c_count <- c.c_count + 1;
  (* first finite bound >= v; a sample above every bound lands only in
     the implicit +inf bucket *)
  let n = Array.length c.c_bounds in
  let rec place i =
    if i < n then
      if v <= c.c_bounds.(i) then
        c.c_bucket_counts.(i) <- c.c_bucket_counts.(i) + 1
      else place (i + 1)
  in
  place 0

let help (t : t) (name : string) (text : string) : unit =
  match Hashtbl.find_opt t.fams name with
  | Some f -> if f.fam_help = "" then f.fam_help <- text
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type series = {
  s_labels : labels;
  s_value : float;
  s_count : int;
  s_buckets : (float * int) list;
}

type family = {
  f_name : string;
  f_kind : kind;
  f_help : string;
  f_series : series list;
}

let compare_labels (a : labels) (b : labels) : int =
  compare a b

let snapshot (t : t) : family list =
  Hashtbl.fold (fun name f acc -> (name, f) :: acc) t.fams []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, f) ->
         let series =
           Hashtbl.fold (fun ls c acc -> (ls, c) :: acc) f.fam_cells []
           |> List.sort (fun (a, _) (b, _) -> compare_labels a b)
           |> List.map (fun (ls, c) ->
                  let buckets =
                    if f.fam_kind <> Histogram then []
                    else begin
                      (* cumulative counts, +inf bucket last *)
                      let acc = ref 0 in
                      let finite =
                        Array.to_list
                          (Array.mapi
                             (fun i b ->
                               acc := !acc + c.c_bucket_counts.(i);
                               (b, !acc))
                             c.c_bounds)
                      in
                      finite @ [ (infinity, c.c_count) ]
                    end
                  in
                  {
                    s_labels = ls;
                    s_value = c.c_value;
                    s_count = c.c_count;
                    s_buckets = buckets;
                  })
         in
         {
           f_name = name;
           f_kind = f.fam_kind;
           f_help = f.fam_help;
           f_series = series;
         })

let cardinality (t : t) : int =
  Hashtbl.fold (fun _ f acc -> acc + Hashtbl.length f.fam_cells) t.fams 0

let find (t : t) ?(labels = []) (name : string) : float option =
  match Hashtbl.find_opt t.fams name with
  | None -> None
  | Some f ->
      Option.map
        (fun c -> c.c_value)
        (Hashtbl.find_opt f.fam_cells (normalize_labels labels))

let find_series (fams : family list) ?(labels = []) (name : string) :
    series option =
  let labels = normalize_labels labels in
  match List.find_opt (fun f -> f.f_name = name) fams with
  | None -> None
  | Some f -> List.find_opt (fun s -> s.s_labels = labels) f.f_series

(* ------------------------------------------------------------------ *)
(* Percentiles *)

(* Prometheus-style histogram_quantile: find the first cumulative
   bucket covering rank = q * count and interpolate linearly inside it
   (lower edge 0 for the first bucket).  The +inf bucket has no upper
   edge, so a quantile landing there reports the highest finite bound
   — or the mean when the histogram has no finite bounds at all. *)
let percentile (s : series) (q : float) : float option =
  if s.s_count = 0 || s.s_buckets = [] then None
  else
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int s.s_count in
    let rec go ~lower ~prev = function
      | [] -> None
      | (le, cum) :: rest ->
          if cum = 0 || float_of_int cum < rank then
            go
              ~lower:(if Float.is_finite le then le else lower)
              ~prev:cum rest
          else if not (Float.is_finite le) then
            Some
              (if prev > 0 || lower > 0. then lower
               else s.s_value /. float_of_int s.s_count)
          else
            let in_bucket = cum - prev in
            if in_bucket <= 0 then Some le
            else
              let frac =
                (rank -. float_of_int prev) /. float_of_int in_bucket
              in
              Some (lower +. ((le -. lower) *. Float.max 0. (Float.min 1. frac)))
    in
    go ~lower:0. ~prev:0 s.s_buckets

(* ------------------------------------------------------------------ *)
(* Exposition *)

let labels_json (ls : labels) : Json.t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ls)

let series_json (kind : kind) (s : series) : Json.t =
  Json.Obj
    (("labels", labels_json s.s_labels)
     ::
     (match kind with
     | Counter | Gauge -> [ ("value", Json.Float s.s_value) ]
     | Histogram ->
         [
           ("sum", Json.Float s.s_value);
           ("count", Json.Int s.s_count);
           ( "buckets",
             Json.List
               (List.map
                  (fun (le, n) ->
                    Json.Obj
                      [
                        ( "le",
                          if Float.is_finite le then Json.Float le
                          else Json.Str "+Inf" );
                        ("count", Json.Int n);
                      ])
                  s.s_buckets) );
         ]))

let to_json (fams : family list) : Json.t =
  Json.Obj
    [
      ("schema", Json.Str "darm-metrics-v1");
      ( "families",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 ([
                    ("name", Json.Str f.f_name);
                    ("kind", Json.Str (kind_to_string f.f_kind));
                  ]
                 @ (if f.f_help = "" then []
                    else [ ("help", Json.Str f.f_help) ])
                 @ [
                     ( "series",
                       Json.List (List.map (series_json f.f_kind) f.f_series)
                     );
                   ]))
             fams) );
    ]

(* Prometheus text format 0.0.4.  Metric and label names pass through
   unchanged (callers use [a-zA-Z_:][a-zA-Z0-9_:]* names); label values
   escape backslash, double quote and newline. *)
let prom_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels (b : Buffer.t) (ls : labels) : unit =
  if ls <> [] then begin
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Buffer.add_string b (prom_escape v);
        Buffer.add_char b '"')
      ls;
    Buffer.add_char b '}'
  end

let prom_sample (b : Buffer.t) (name : string) (ls : labels) (v : string) :
    unit =
  Buffer.add_string b name;
  prom_labels b ls;
  Buffer.add_char b ' ';
  Buffer.add_string b v;
  Buffer.add_char b '\n'

let le_repr (le : float) : string =
  if Float.is_finite le then Json.float_repr le else "+Inf"

(* ------------------------------------------------------------------ *)
(* Parsing (the inverse of [to_json], for snapshot consumers) *)

let ( let* ) = Result.bind

let kind_of_string = function
  | "counter" -> Ok Counter
  | "gauge" -> Ok Gauge
  | "histogram" -> Ok Histogram
  | other -> Error (Printf.sprintf "unknown metric kind %S" other)

let num_of_json = function
  | Json.Int i -> Ok (float_of_int i)
  | Json.Float f -> Ok f
  | _ -> Error "expected a number"

let labels_of_json (j : Json.t) : (labels, string) result =
  match j with
  | Json.Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match v with
          | Json.Str s -> Ok ((k, s) :: acc)
          | _ -> Error (Printf.sprintf "label %S is not a string" k))
        (Ok []) fields
      |> Result.map List.rev
  | _ -> Error "\"labels\" is not an object"

let bucket_of_json (j : Json.t) : (float * int, string) result =
  let* le =
    match Json.member "le" j with
    | Some (Json.Str "+Inf") -> Ok infinity
    | Some n -> num_of_json n
    | None -> Error "bucket missing \"le\""
  in
  let* count =
    match Json.member "count" j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error "bucket missing int \"count\""
  in
  Ok (le, count)

let series_of_json (kind : kind) (j : Json.t) : (series, string) result =
  let* s_labels =
    match Json.member "labels" j with
    | Some l -> labels_of_json l
    | None -> Error "series missing \"labels\""
  in
  match kind with
  | Counter | Gauge ->
      let* s_value =
        match Json.member "value" j with
        | Some n -> num_of_json n
        | None -> Error "series missing \"value\""
      in
      Ok { s_labels; s_value; s_count = 0; s_buckets = [] }
  | Histogram ->
      let* s_value =
        match Json.member "sum" j with
        | Some n -> num_of_json n
        | None -> Error "histogram series missing \"sum\""
      in
      let* s_count =
        match Json.member "count" j with
        | Some (Json.Int i) -> Ok i
        | _ -> Error "histogram series missing int \"count\""
      in
      let* s_buckets =
        match Json.member "buckets" j with
        | Some (Json.List bs) ->
            List.fold_left
              (fun acc b ->
                let* acc = acc in
                let* bucket = bucket_of_json b in
                Ok (bucket :: acc))
              (Ok []) bs
            |> Result.map List.rev
        | _ -> Error "histogram series missing list \"buckets\""
      in
      Ok { s_labels; s_value; s_count; s_buckets }

let family_of_json (j : Json.t) : (family, string) result =
  let* f_name =
    match Json.member "name" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "family missing string \"name\""
  in
  let* f_kind =
    match Json.member "kind" j with
    | Some (Json.Str s) -> kind_of_string s
    | _ -> Error (Printf.sprintf "family %S missing string \"kind\"" f_name)
  in
  let f_help =
    match Json.member "help" j with Some (Json.Str s) -> s | _ -> ""
  in
  let* f_series =
    match Json.member "series" j with
    | Some (Json.List ss) ->
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* series = series_of_json f_kind s in
            Ok (series :: acc))
          (Ok []) ss
        |> Result.map List.rev
    | _ -> Error (Printf.sprintf "family %S missing list \"series\"" f_name)
  in
  Ok { f_name; f_kind; f_help; f_series }

let of_json (j : Json.t) : (family list, string) result =
  match Json.member "schema" j with
  | Some (Json.Str "darm-metrics-v1") -> (
      match Json.member "families" j with
      | Some (Json.List fs) ->
          List.fold_left
            (fun acc f ->
              let* acc = acc in
              let* fam = family_of_json f in
              Ok (fam :: acc))
            (Ok []) fs
          |> Result.map List.rev
      | _ -> Error "missing list field \"families\"")
  | Some (Json.Str other) ->
      Error
        (Printf.sprintf "schema mismatch: expected \"darm-metrics-v1\", got %S"
           other)
  | _ -> Error "missing string field \"schema\""

let to_prometheus (fams : family list) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      if f.f_help <> "" then begin
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" f.f_name (prom_escape f.f_help))
      end;
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" f.f_name (kind_to_string f.f_kind));
      List.iter
        (fun s ->
          match f.f_kind with
          | Counter | Gauge ->
              prom_sample b f.f_name s.s_labels (Json.float_repr s.s_value)
          | Histogram ->
              List.iter
                (fun (le, n) ->
                  prom_sample b (f.f_name ^ "_bucket")
                    (s.s_labels @ [ ("le", le_repr le) ])
                    (string_of_int n))
                s.s_buckets;
              prom_sample b (f.f_name ^ "_sum") s.s_labels
                (Json.float_repr s.s_value);
              prom_sample b (f.f_name ^ "_count") s.s_labels
                (string_of_int s.s_count))
        f.f_series)
    fams;
  Buffer.contents b
