(** Structured tracing: counters, spans and instant events with typed
    key-value attributes, collected into in-memory buffers.

    {b Event model.}  An event has a name, a category, a Chrome
    trace-event phase ([B]egin span / [E]nd span / [I]nstant /
    [C]ounter), a timestamp, a (pid, tid) track, and a list of typed
    attributes.  Timestamps are {e virtual}: either supplied by the
    instrumented code (the simulator passes its deterministic cycle
    count) or drawn from the buffer's own event counter — never from the
    wall clock — so a trace is a pure function of the computation and
    two runs of the same work produce byte-identical traces regardless
    of machine load or the {!Darm_harness.Parallel_sweep} pool size.

    {b Zero overhead.}  Instrumented code holds a [Trace.t option] and
    emits only under [Some]; with no buffer installed the cost is one
    pattern match at each (rare) instrumentation site and the observed
    computation is bit-identical to an uninstrumented run.

    {b Determinism under parallelism.}  Buffers are single-domain:
    each parallel task records into its own buffer and the caller
    {!merge}s them in task order, mirroring the deterministic-output
    design of {!Darm_harness.Parallel_sweep}.

    {b Track conventions} used by the instrumented layers (see
    [doc/observability.md]): the pass driver and harness emit on
    pid 0; a simulator run emits on a caller-chosen pid
    ([Simulator.config.obs_pid]) with tid 0 carrying the per-block
    cycle spans and tid [1 + tid_base] carrying each warp's divergence
    timeline. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type phase =
  | B  (** span begin *)
  | E  (** span end *)
  | I  (** instant event *)
  | C  (** counter sample *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts : int;
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * value) list;
}

type t

val create : unit -> t
val length : t -> int

(** Events in emission order. *)
val events : t -> event list

val value_to_json : value -> Json.t

(* -- emission ------------------------------------------------------ *)
(* [ts] defaults to the buffer's virtual clock, which advances by one
   per event and never runs backwards (an explicit [ts] ahead of it
   fast-forwards the clock). *)

val instant :
  t ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?ts:int ->
  ?args:(string * value) list ->
  string ->
  unit

val begin_span :
  t ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?ts:int ->
  ?args:(string * value) list ->
  string ->
  unit

(** Ends the innermost open span with this name on the (pid, tid)
    track.  End events carry no attributes; attach them to the begin
    event. *)
val end_span :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?ts:int -> string -> unit

(** [with_span t name f] — [f] bracketed by a begin/end pair; the end
    event is emitted even when [f] raises. *)
val with_span :
  t ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * value) list ->
  string ->
  (unit -> 'a) ->
  'a

val counter :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?ts:int -> string -> float -> unit

(* -- structure ----------------------------------------------------- *)

(** Concatenate buffers in list order into a fresh buffer (the inputs
    are unchanged).  Event order, and therefore serialized bytes, are a
    function of the list order only. *)
val merge : t list -> t

(** Add [delta] to the pid of every event — used to give each parallel
    task its own pid namespace before a {!merge}. *)
val shift_pid : t -> int -> unit

(** Every [B] has a matching same-name [E] on its (pid, tid) track and
    the pairs nest properly. *)
val balanced : t -> bool

(** Structural equality of two buffers' event sequences. *)
val equal : t -> t -> bool
