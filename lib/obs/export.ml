(* Trace serialization to JSONL and Chrome trace-event JSON. *)

type format = Jsonl | Chrome

let format_of_string = function
  | "jsonl" -> Ok Jsonl
  | "chrome" -> Ok Chrome
  | other -> Error (Printf.sprintf "unknown trace format %S (jsonl|chrome)" other)

let ph_to_string : Trace.phase -> string = function
  | Trace.B -> "B"
  | Trace.E -> "E"
  | Trace.I -> "i"
  | Trace.C -> "C"

let ph_of_string = function
  | "B" -> Ok Trace.B
  | "E" -> Ok Trace.E
  | "i" | "I" | "n" -> Ok Trace.I
  | "C" -> Ok Trace.C
  | other -> Error (Printf.sprintf "unknown phase %S" other)

let event_to_json (ev : Trace.event) : Json.t =
  Json.Obj
    [
      ("name", Json.Str ev.Trace.ev_name);
      ("cat", Json.Str ev.Trace.ev_cat);
      ("ph", Json.Str (ph_to_string ev.Trace.ev_ph));
      ("ts", Json.Int ev.Trace.ev_ts);
      ("pid", Json.Int ev.Trace.ev_pid);
      ("tid", Json.Int ev.Trace.ev_tid);
      ( "args",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Trace.value_to_json v))
             ev.Trace.ev_args) );
    ]

let event_of_json (j : Json.t) : (Trace.event, string) result =
  let ( let* ) = Result.bind in
  let str_field k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "event missing string field %S" k)
  in
  let int_field k =
    match Json.member k j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "event missing integer field %S" k)
  in
  let* name = str_field "name" in
  let* cat = str_field "cat" in
  let* ph = Result.bind (str_field "ph") ph_of_string in
  let* ts = int_field "ts" in
  let* pid = int_field "pid" in
  let* tid = int_field "tid" in
  let* args =
    match Json.member "args" j with
    | None -> Ok []
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            let* v =
              match v with
              | Json.Str s -> Ok (Trace.Str s)
              | Json.Int n -> Ok (Trace.Int n)
              | Json.Float x -> Ok (Trace.Float x)
              | Json.Bool b -> Ok (Trace.Bool b)
              | _ -> Error (Printf.sprintf "arg %S is not a scalar" k)
            in
            Ok ((k, v) :: acc))
          (Ok []) fields
        |> Result.map List.rev
    | Some _ -> Error "args is not an object"
  in
  Ok
    {
      Trace.ev_name = name;
      ev_cat = cat;
      ev_ph = ph;
      ev_ts = ts;
      ev_pid = pid;
      ev_tid = tid;
      ev_args = args;
    }

let to_jsonl (t : Trace.t) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Json.to_buffer b (event_to_json ev);
      Buffer.add_char b '\n')
    (Trace.events t);
  Buffer.contents b

let to_chrome (t : Trace.t) : string =
  let b = Buffer.create 4096 in
  Json.to_buffer b
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map event_to_json (Trace.events t)));
         ("displayTimeUnit", Json.Str "ms");
       ]);
  Buffer.add_char b '\n';
  Buffer.contents b

let events_of_jsonl (s : string) : (Trace.event list, string) result =
  let ( let* ) = Result.bind in
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.fold_left
       (fun acc line ->
         let* acc = acc in
         let* j = Json.parse line in
         let* ev = event_of_json j in
         Ok (ev :: acc))
       (Ok [])
  |> Result.map List.rev

(* validate the written bytes by re-reading them: the parse must
   succeed and yield at least one event *)
let validate (format : format) (path : string) (contents : string) : unit =
  let count =
    match format with
    | Jsonl -> (
        match events_of_jsonl contents with
        | Ok evs -> List.length evs
        | Error msg ->
            failwith (Printf.sprintf "%s: invalid JSONL trace: %s" path msg))
    | Chrome -> (
        match Json.parse contents with
        | Error msg ->
            failwith (Printf.sprintf "%s: invalid JSON: %s" path msg)
        | Ok j -> (
            match Json.member "traceEvents" j with
            | Some (Json.List evs) ->
                List.iter
                  (fun e ->
                    match event_of_json e with
                    | Ok _ -> ()
                    | Error msg ->
                        failwith
                          (Printf.sprintf "%s: malformed trace event: %s" path
                             msg))
                  evs;
                List.length evs
            | _ ->
                failwith
                  (Printf.sprintf "%s: missing traceEvents array" path)))
  in
  if count = 0 then failwith (Printf.sprintf "%s: trace is empty" path)

let write_file ~(format : format) ~(path : string) (t : Trace.t) : unit =
  let contents = match format with Jsonl -> to_jsonl t | Chrome -> to_chrome t in
  (* binary + temp-file + rename: the byte-identity guarantee must
     survive any platform's text mode, and a failed write (including a
     failed validation of the re-read bytes) must leave a pre-existing
     trace file untouched rather than torn *)
  Fsio.write_atomic ~validate:(validate format path) ~path contents
