(* Minimal JSON tree with a deterministic compact emitter and a
   recursive-descent parser.  See json.mli for the contract. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape_to (b : Buffer.t) (s : string) : unit =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* shortest decimal representation that still round-trips; JSON has no
   inf/nan, those become null at the call site *)
let float_repr (x : float) : string =
  let s = Printf.sprintf "%.12g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec to_buffer (b : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float x ->
      if Float.is_finite x then Buffer.add_string b (float_repr x)
      else Buffer.add_string b "null"
  | Str s -> escape_to b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_to b k;
          Buffer.add_char b ':';
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string (j : t) : string =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at %d" m !pos))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail "expected %c" c
  in
  let literal (word : string) (v : t) : t =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  (* UTF-8 encode one code point *)
  let add_utf8 (b : Buffer.t) (cp : int) : unit =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () : int =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () : string =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let cp = hex4 () in
              (* surrogate pair *)
              if cp >= 0xD800 && cp <= 0xDBFF
                 && !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                add_utf8 b (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else add_utf8 b cp
          | _ -> fail "bad escape \\%c" e);
          loop ())
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let parse_number () : t =
    let start = !pos in
    let is_float = ref false in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
          is_float := true;
          true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail "bad number %S" text
    else
      match int_of_string_opt text with
      | Some k -> Int k
      | None -> fail "bad number %S" text
  in
  let rec parse_value () : t =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elems ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member (k : string) (j : t) : t option =
  match j with Obj fields -> List.assoc_opt k fields | _ -> None
