(* Fleet-telemetry event stream (darm-events-v1).  See events.mli. *)

let schema = "darm-events-v1"

let core_events =
  [
    "run_start";
    "chunk_start";
    "spec_start";
    "cache_hit";
    "cache_miss";
    "spec_finish";
    "chunk_finish";
    "run_finish";
  ]

let runtime_events = [ "worker_start"; "worker_finish"; "stalled" ]

let event_names = core_events @ runtime_events

let reserved = [ "schema"; "vt"; "ev"; "rt" ]

(* ------------------------------------------------------------------ *)
(* Emission *)

type sink = {
  sk_oc : out_channel;
  sk_mutex : Mutex.t;
  mutable sk_vt : int;
}

let open_sink ~path : sink =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
      path
  in
  { sk_oc = oc; sk_mutex = Mutex.create (); sk_vt = 0 }

let emit (s : sink) ?(rt = []) ~(ev : string)
    (fields : (string * Json.t) list) : unit =
  if not (List.mem ev event_names) then
    invalid_arg (Printf.sprintf "Events.emit: unknown event type %S" ev);
  List.iter
    (fun (k, _) ->
      if List.mem k reserved then
        invalid_arg (Printf.sprintf "Events.emit: reserved field %S" k))
    fields;
  Mutex.lock s.sk_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock s.sk_mutex)
    (fun () ->
      let vt = s.sk_vt in
      s.sk_vt <- vt + 1;
      let j =
        Json.Obj
          ([ ("schema", Json.Str schema); ("vt", Json.Int vt);
             ("ev", Json.Str ev) ]
          @ fields
          @ (if rt = [] then [] else [ ("rt", Json.Obj rt) ]))
      in
      output_string s.sk_oc (Json.to_string j);
      output_char s.sk_oc '\n';
      (* flush per line: a live tail must always see a valid prefix *)
      flush s.sk_oc)

let count (s : sink) : int = s.sk_vt

let close (s : sink) : unit = close_out_noerr s.sk_oc

(* ------------------------------------------------------------------ *)
(* Reading *)

type view = { vw_vt : int; vw_ev : string; vw_json : Json.t }

let fold_lines (text : string) (f : int -> string -> ('a, string) result)
    : ('a list, string) result =
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest when String.trim line = "" -> go (i + 1) acc rest
    | line :: rest -> (
        match f i line with
        | Error e -> Error e
        | Ok v -> go (i + 1) (v :: acc) rest)
  in
  go 1 [] lines

let view_of_line i line : (view, string) result =
  match Json.parse line with
  | Error e -> Error (Printf.sprintf "line %d: invalid JSON: %s" i e)
  | Ok j -> (
      match (Json.member "vt" j, Json.member "ev" j) with
      | Some (Json.Int vt), Some (Json.Str ev) ->
          Ok { vw_vt = vt; vw_ev = ev; vw_json = j }
      | _ -> Error (Printf.sprintf "line %d: missing vt/ev fields" i))

let read (text : string) : (view list, string) result =
  fold_lines text view_of_line

let validate_view i (v : view) : (unit, string) result =
  if Json.member "schema" v.vw_json <> Some (Json.Str schema) then
    Error (Printf.sprintf "line %d: schema is not %S" i schema)
  else if not (List.mem v.vw_ev event_names) then
    Error (Printf.sprintf "line %d: unknown event type %S" i v.vw_ev)
  else
    match Json.member "rt" v.vw_json with
    | None | Some (Json.Obj _) -> Ok ()
    | Some _ -> Error (Printf.sprintf "line %d: \"rt\" is not an object" i)

let validate (text : string) : (int, string) result =
  match
    fold_lines text (fun i line ->
        match view_of_line i line with
        | Error e -> Error e
        | Ok v -> (
            match validate_view i v with
            | Error e -> Error e
            | Ok () -> Ok (i, v)))
  with
  | Error e -> Error e
  | Ok views ->
      (* vt strictly increasing over the whole stream *)
      let rec mono last = function
        | [] -> Ok (List.length views)
        | (i, v) :: rest ->
            if v.vw_vt <= last then
              Error
                (Printf.sprintf "line %d: vt %d is not above the previous %d"
                   i v.vw_vt last)
            else mono v.vw_vt rest
      in
      mono (-1) views

let canonicalize (text : string) : (string, string) result =
  match validate text with
  | Error e -> Error e
  | Ok _ -> (
      match read text with
      | Error e -> Error e
      | Ok views ->
          let b = Buffer.create 1024 in
          let vt = ref 0 in
          List.iter
            (fun v ->
              if not (List.mem v.vw_ev runtime_events) then begin
                let fields =
                  match v.vw_json with
                  | Json.Obj fs ->
                      List.filter_map
                        (fun (k, x) ->
                          match k with
                          | "rt" -> None
                          | "vt" -> Some (k, Json.Int !vt)
                          | _ -> Some (k, x))
                        fs
                  | _ -> assert false
                in
                incr vt;
                Json.to_buffer b (Json.Obj fields);
                Buffer.add_char b '\n'
              end)
            views;
          Ok (Buffer.contents b))
