(** Structured fleet-telemetry event stream ([darm-events-v1] JSONL).

    The batch driver journals its run/chunk/spec lifecycle — and the
    cache's hit/miss decisions — as one JSON object per line, so an
    external observer ([darm_opt top], [darm_opt events], a log
    shipper) can follow a long run live and replay it after the fact.

    {b Determinism.}  The stream obeys the repo-wide contract
    (doc/fleet.md): its {e canonical} form is byte-identical at any
    [--jobs] count.  Three mechanisms make that work:

    - {b Core vs runtime events.}  {!event_names} splits into core
      events — emitted by the coordinator in manifest/chunk order, so
      their sequence is deterministic — and {!runtime_events}
      ([worker_start], [worker_finish], [stalled]) whose very {e count}
      depends on the pool size and on wall-clock timing.
    - {b The [rt] envelope.}  Every nondeterministic field of a core
      event (wall-clock durations, the worker id and per-worker
      sequence number that happened to serve a spec) is isolated in a
      trailing ["rt"] object rather than mixed into the core fields.
    - {b Virtual timestamps.}  Each event carries [vt], the sink's
      monotonic emission counter — an order, not a clock — validated as
      strictly increasing by {!validate}.

    {!canonicalize} then drops runtime events, strips the ["rt"]
    envelope and renumbers [vt] over what remains; the result is
    byte-identical across job counts (given the same starting cache
    state), and CI [cmp]s it exactly.

    {b Concurrency.}  A sink serializes emission under a mutex and
    flushes per line, so a live tail always sees a valid JSONL prefix;
    the file itself is created truncated (binary) at {!open_sink}. *)

(** ["darm-events-v1"]. *)
val schema : string

(** Every event type a valid stream may carry, core and runtime. *)
val event_names : string list

(** The nondeterministic subset ([worker_start], [worker_finish],
    [stalled]): their count and position depend on the pool size and on
    wall-clock timing, so {!canonicalize} drops them. *)
val runtime_events : string list

(** {2 Emission} *)

type sink

(** Open (truncate, binary) the stream file.  Raises [Sys_error] when
    the path is not writable. *)
val open_sink : path:string -> sink

(** [emit sink ~ev fields] appends one event line: [schema], the next
    [vt], [ev], then [fields] in order, then — when [rt] is non-empty —
    the ["rt"] envelope last.  Raises [Invalid_argument] for an [ev]
    outside {!event_names} or a field named [schema]/[vt]/[ev]/[rt]
    (the reserved keys).  Thread-safe; flushes per line. *)
val emit :
  sink -> ?rt:(string * Json.t) list -> ev:string ->
  (string * Json.t) list -> unit

(** Events emitted so far. *)
val count : sink -> int

val close : sink -> unit

(** {2 Reading} *)

type view = {
  vw_vt : int;
  vw_ev : string;
  vw_json : Json.t;  (** the whole line, for field access *)
}

(** Parse a stream's text into views, without validation beyond JSON
    well-formedness and the presence of [vt]/[ev].  Blank lines are
    skipped; an error carries the 1-based line number. *)
val read : string -> (view list, string) result

(** Validate a stream's text: every line is an object carrying
    [schema = "darm-events-v1"], an integer [vt] strictly increasing
    over the stream, an [ev] drawn from {!event_names}, and — when
    present — an ["rt"] object.  Returns the event count. *)
val validate : string -> (int, string) result

(** The canonical form: runtime events dropped, ["rt"] envelopes
    stripped, [vt] renumbered from 0 over the survivors; one compact
    JSON line per event, newline-terminated.  Validates as it goes
    ([Error] on a malformed stream).  This is the byte-comparable
    artifact of the determinism contract. *)
val canonicalize : string -> (string, string) result
