(* Atomic metrics snapshot files.  See snapshot.mli. *)

module MR = Metrics_registry

let prom_path base = base ^ ".prom"
let json_path base = base ^ ".json"

let validate_json (bytes : string) : unit =
  match Json.parse bytes with
  | Error e -> failwith (Printf.sprintf "snapshot JSON does not parse: %s" e)
  | Ok j -> (
      match MR.of_json j with
      | Ok _ -> ()
      | Error e -> failwith (Printf.sprintf "snapshot JSON is invalid: %s" e))

let write ~base (fams : MR.family list) : unit =
  Fsio.write_atomic ~path:(prom_path base) (MR.to_prometheus fams);
  Fsio.write_atomic ~validate:validate_json ~path:(json_path base)
    (Json.to_string (MR.to_json fams) ^ "\n")

let read_json ~path : (MR.family list, string) result =
  match Fsio.read_file path with
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error (path ^ ": truncated mid-read")
  | bytes -> (
      match Json.parse bytes with
      | Error e -> Error (Printf.sprintf "%s: invalid JSON: %s" path e)
      | Ok j -> (
          match MR.of_json j with
          | Ok fams -> Ok fams
          | Error e -> Error (Printf.sprintf "%s: %s" path e)))
