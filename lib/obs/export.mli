(** Trace sinks: serialize a {!Trace.t} buffer to JSON Lines or to the
    Chrome trace-event format that Perfetto / [chrome://tracing] load
    directly.

    Both formats share one event schema — every event object carries
    [name], [cat], [ph], [ts], [pid], [tid] and an [args] object — so a
    JSONL file is exactly the Chrome [traceEvents] array split one event
    per line.  Serialization is deterministic: byte-identical buffers
    in, byte-identical files out. *)

type format = Jsonl | Chrome

val format_of_string : string -> (format, string) result

(** One event object per line, in emission order. *)
val to_jsonl : Trace.t -> string

(** [{"traceEvents":[...],"displayTimeUnit":"ms"}] — load in Perfetto or
    [chrome://tracing]. *)
val to_chrome : Trace.t -> string

val event_to_json : Trace.event -> Json.t

(** Inverse of {!event_to_json}; rejects objects missing any of the
    required [name]/[ph]/[ts]/[pid]/[tid] fields. *)
val event_of_json : Json.t -> (Trace.event, string) result

(** Parse a JSONL document back into its event list (round-trip of
    {!to_jsonl}; blank lines are skipped). *)
val events_of_jsonl : string -> (Trace.event list, string) result

(** Serialize to [path] and then re-read and re-parse the written file,
    raising [Failure] if the bytes on disk do not parse back to a
    non-empty event list — a malformed trace fails the run that wrote
    it instead of the later analysis that loads it.  The write is
    binary and atomic ({!Fsio.write_atomic}): the bytes land in a
    sibling temp file and are renamed over [path] only after they
    validate, so a crash or a failed validation never leaves a torn
    trace behind. *)
val write_file : format:format -> path:string -> Trace.t -> unit
