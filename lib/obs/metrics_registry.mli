(** Typed metrics registry: named counters, gauges and histograms with
    string labels, exposed as deterministic snapshots in JSON or
    Prometheus text format.

    Where {!Trace} records {e when} things happened, the registry
    records {e how much} — it is the aggregation layer behind the
    per-branch divergence attribution of {!Darm_sim.Metrics} and the
    [darm_opt report] tables (see doc/observability.md).

    {b Typing.}  A metric name is bound to one kind (counter, gauge or
    histogram) on first use; re-using the name with a different kind
    raises [Invalid_argument].  Within one name, each distinct label
    set is an independent time series (Prometheus's data model).

    {b Determinism.}  A {!snapshot} orders families by metric name and
    series by their label list, so two registries fed the same updates
    — in any order — serialize to identical bytes.  No wall-clock time
    enters a snapshot. *)

type t

(** Labels are (key, value) pairs; order and duplicates are
    normalized away (sorted by key, last binding wins). *)
type labels = (string * string) list

val create : unit -> t

(** {2 Updates} *)

(** [inc t name] adds [by] (default [1.]) to the counter [name]
    (registering it on first use).  Raises [Invalid_argument] if [by]
    is negative — counters only go up — or if [name] is already bound
    to another kind. *)
val inc : t -> ?labels:labels -> ?by:float -> string -> unit

(** [set t name v] sets the gauge [name] to [v]. *)
val set : t -> ?labels:labels -> string -> float -> unit

(** [observe t name v] records one sample into the histogram [name].
    Buckets are fixed at registration: the [buckets] of the {e first}
    [observe] for that name win; they are upper bounds, sorted and
    deduplicated, with [+inf] implicit. *)
val observe : t -> ?labels:labels -> ?buckets:float list -> string -> float -> unit

(** Optional help text attached to a metric family (first writer wins;
    emitted as the [# HELP] line of the Prometheus exposition).  A name
    must be registered by an update before help can attach; help for an
    unknown name is ignored. *)
val help : t -> string -> string -> unit

val default_buckets : float list

(** {2 Snapshots} *)

type kind = Counter | Gauge | Histogram

type series = {
  s_labels : labels;  (** normalized: sorted by key *)
  s_value : float;  (** counter / gauge value; histogram sample sum *)
  s_count : int;  (** histogram sample count (0 for counter/gauge) *)
  s_buckets : (float * int) list;
      (** histogram only: cumulative count per upper bound, the last
          bound being [infinity]; [] for counter/gauge *)
}

type family = {
  f_name : string;
  f_kind : kind;
  f_help : string;  (** "" when never set *)
  f_series : series list;  (** sorted by label list *)
}

(** Deterministic view of the whole registry: families sorted by name,
    series sorted by labels.  An empty registry yields [[]]. *)
val snapshot : t -> family list

(** Number of registered series across all families. *)
val cardinality : t -> int

(** Look up one series' value ([None] if the name/labels pair was
    never written).  For histograms the value is the sample sum. *)
val find : t -> ?labels:labels -> string -> float option

(** Look up one series in a snapshot by family name and (normalized)
    labels — the read-side counterpart of {!find} for consumers holding
    a parsed snapshot rather than a live registry. *)
val find_series : family list -> ?labels:labels -> string -> series option

(** {2 Percentiles}

    [percentile s q] estimates the [q]-quantile ([0..1], clamped) of a
    histogram series from its cumulative buckets, Prometheus
    [histogram_quantile]-style: the target rank [q * count] is located
    in the first cumulative bucket covering it and the value is
    linearly interpolated between the bucket's edges (lower edge [0.]
    for the first bucket).  A quantile landing in the implicit [+inf]
    bucket reports the highest finite bound — or the series mean when
    the histogram has no finite bounds.  [None] for an empty histogram
    or a counter/gauge series (no buckets).  The estimate is exact when
    the sample sits on a bucket boundary and the quantile rank is the
    sample's own; otherwise it is bounded by the bucket's edges. *)
val percentile : series -> float -> float option

(** {2 Exposition} *)

(** [{"schema":"darm-metrics-v1","families":[...]}] — see
    doc/schemas.md. *)
val to_json : family list -> Json.t

(** Parse a [darm-metrics-v1] document back into a snapshot — the
    inverse of {!to_json}, used by snapshot consumers ([darm_opt top])
    that observe a run through its snapshot files rather than a live
    registry.  Tolerant of ints where floats are expected (and vice
    versa); [Error] on a schema mismatch or a malformed family. *)
val of_json : Json.t -> (family list, string) result

(** Prometheus text exposition format (version 0.0.4): [# HELP] /
    [# TYPE] comments, one line per sample, histograms expanded into
    [_bucket]/[_sum]/[_count] with a cumulative [le="+Inf"] bucket.
    Ends with a newline; an empty snapshot yields [""]. *)
val to_prometheus : family list -> string
