(** Binary, atomic file output shared by every sink that promises
    byte-identical or crash-safe files.

    Two properties every writer in this tree wants and none should
    re-implement:

    - {b binary mode} — the determinism story of the trace, bench and
      CSV sinks is "[cmp] the files"; a text-mode channel would rewrite
      ['\n'] on some platforms and silently break it;
    - {b atomicity} — the bench summary and metrics snapshots are
      overwritten in place by every run; a crash mid-write must never
      leave a torn file for the validator (or CI) to choke on, so the
      bytes go to a sibling temp file first and [Sys.rename] into
      place only once complete (and validated). *)

(** [write_atomic ?validate ~path contents] writes [contents] to a
    fresh temp file in [path]'s directory, optionally re-reads the
    written bytes and passes them to [validate] (which must raise on a
    bad file), then renames the temp file onto [path].  On any failure
    the temp file is removed and [path] is left untouched — in
    particular a previous version of the file survives a failed
    write. *)
val write_atomic :
  ?validate:(string -> unit) -> path:string -> string -> unit

(** Whole file as bytes ([open_in_bin]). *)
val read_file : string -> string
