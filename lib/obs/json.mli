(** Minimal JSON tree: enough to emit and re-read trace files and bench
    summaries without an external dependency.

    The emitter is deterministic — object fields print in the order
    given, numbers always format the same way — so two structurally
    identical documents serialize to identical bytes (the property the
    trace-determinism guarantee rests on). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (no whitespace) serialization.  Strings are escaped per RFC
    8259; non-finite floats — which JSON cannot represent — emit as
    [null]. *)
val to_buffer : Buffer.t -> t -> unit

(** The emitter's deterministic float formatting (shortest decimal that
    round-trips) — shared with the Prometheus exposition of
    {!Metrics_registry} so every serialized number prints one way. *)
val float_repr : float -> string

val to_string : t -> string

(** Parse one JSON document (surrounding whitespace allowed).  Numbers
    without [.]/[e] parse as [Int], others as [Float]; [\uXXXX] escapes
    decode to UTF-8. *)
val parse : string -> (t, string) result

(** [member k j] — field [k] of object [j], if present. *)
val member : string -> t -> t option
